"""Memory-intensity classification (paper Section III-B3, final remarks).

The co-scheduled variant assumes "some external tool/hint has classified
each workload as memory-intensive or not"; the paper proposes removing
that limitation by classifying on the number of Memory Accesses Per
Instruction (MAPI), as Carrefour does. This module implements that
classifier, both offline (from a workload spec) and on-line (from observed
counters), so the co-scheduled pipeline can designate the high-priority
and best-effort applications automatically.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.engine.app import Application
from repro.perf.counters import CounterBank
from repro.topology.machine import Machine
from repro.workloads.base import WorkloadSpec

#: Bytes transferred per memory access (one cache line).
CACHE_LINE_BYTES: int = 64

#: Assumed baseline instructions-per-cycle for converting clock rate to an
#: instruction rate; real classifiers read the retired-instruction counter.
BASELINE_IPC: float = 1.0


class MemoryIntensity(enum.Enum):
    """Binary classification used by the co-scheduled pipeline."""

    MEMORY_INTENSIVE = "memory-intensive"
    CPU_INTENSIVE = "cpu-intensive"


@dataclass(frozen=True)
class ClassifierConfig:
    """Thresholds of the MAPI classifier.

    Attributes
    ----------
    mapi_threshold:
        Memory accesses per instruction above which a workload counts as
        memory-intensive. Carrefour's published threshold is on the order
        of 0.005-0.05 depending on the machine; the default sits in that
        band and cleanly separates the paper's benchmarks from Swaptions.
    """

    mapi_threshold: float = 0.01

    def __post_init__(self) -> None:
        if self.mapi_threshold <= 0:
            raise ValueError(f"mapi_threshold must be positive, got {self.mapi_threshold}")


def estimate_mapi(
    workload: WorkloadSpec, machine: Machine, *, node: int = 0
) -> float:
    """MAPI of a workload running on one full node of ``machine``.

    Derived from the demand model: accesses/s = demand / cache-line size;
    instructions/s = cores x frequency x baseline IPC.
    """
    cores = machine.node(node).num_cores
    if cores == 0:
        raise ValueError(f"node {node} has no cores to run on")
    freq_hz = machine.node(node).cores[0].frequency_ghz * 1e9
    accesses_per_s = workload.total_bw_node * 1e9 / CACHE_LINE_BYTES
    instructions_per_s = cores * freq_hz * BASELINE_IPC
    return accesses_per_s / instructions_per_s


def measured_mapi(
    app: Application, counters: CounterBank
) -> float:
    """On-line MAPI from the throughput counter of a running application."""
    throughput = counters.true_throughput(app.app_id)
    accesses_per_s = throughput * 1e9 / CACHE_LINE_BYTES
    freq_hz = app.machine.node(app.worker_nodes[0]).cores[0].frequency_ghz * 1e9
    instructions_per_s = app.num_threads * freq_hz * BASELINE_IPC
    return accesses_per_s / instructions_per_s


class WorkloadClassifier:
    """MAPI-threshold classifier."""

    def __init__(self, config: ClassifierConfig = ClassifierConfig()):
        self.config = config

    def classify(self, workload: WorkloadSpec, machine: Machine) -> MemoryIntensity:
        """Offline classification from the workload's demand model."""
        return self._decide(estimate_mapi(workload, machine))

    def classify_running(
        self, app: Application, counters: CounterBank
    ) -> MemoryIntensity:
        """On-line classification from observed throughput."""
        return self._decide(measured_mapi(app, counters))

    def pick_best_effort(
        self, a: Application, b: Application, counters: Optional[CounterBank] = None
    ) -> Application:
        """Of two co-located applications, the one BWAP should optimise.

        The memory-intensive application is the best-effort one whose
        pages BWAP scatters; ties go to the higher estimated MAPI.
        """
        mapi_a = estimate_mapi(a.workload, a.machine, node=a.worker_nodes[0])
        mapi_b = estimate_mapi(b.workload, b.machine, node=b.worker_nodes[0])
        return a if mapi_a >= mapi_b else b

    def _decide(self, mapi: float) -> MemoryIntensity:
        if mapi >= self.config.mapi_threshold:
            return MemoryIntensity.MEMORY_INTENSIVE
        return MemoryIntensity.CPU_INTENSIVE
