"""BWAP — the paper's contribution.

Canonical tuner (offline, Eq. 2/5 over a profiled bandwidth matrix), DWP
tuner (on-line 1-D hill climbing with incremental migration), the two
weighted-interleave back ends (Algorithm 1 at user level; exact kernel
policy), the co-scheduled 2-stage variant, the ``BWAP-init`` facade, and
the offline N-dimensional search oracle used as ground truth.
"""

from repro.core.canonical import (
    CanonicalTuner,
    minimum_bandwidths,
    weights_from_bandwidths,
)
from repro.core.interleave import (
    PlacementOutcome,
    algorithm1_subranges,
    apply_weighted_kernel,
    apply_weighted_placement,
    apply_weighted_user,
    placement_error,
)
from repro.core.dwp import (
    CoScheduledDWPTuner,
    DWPProbeSession,
    DWPStep,
    DWPTuner,
    combine_weights,
    dwp_probe_curve,
)
from repro.core.hardening import (
    HARDENED_PROFILE,
    HardenedCoScheduledDWPTuner,
    HardenedDWPTuner,
    HardeningConfig,
)
from repro.core.bwap import BWAPConfig, bwap_init, canonical_or_uniform
from repro.core.classify import (
    ClassifierConfig,
    MemoryIntensity,
    WorkloadClassifier,
    estimate_mapi,
    measured_mapi,
)
from repro.core.adaptive import AdaptiveBWAP, AdaptiveConfig, AdaptiveState
from repro.core.split import SplitDWPTuner, SplitPlacement, split_bwap_init
from repro.core.search import (
    BatchedAnalyticEvaluator,
    SearchResult,
    hill_climb,
    make_analytic_evaluator,
    make_placement_evaluator,
    search_optimal_placement,
    uniform_workers_start,
)

__all__ = [
    "CanonicalTuner",
    "minimum_bandwidths",
    "weights_from_bandwidths",
    "PlacementOutcome",
    "algorithm1_subranges",
    "apply_weighted_kernel",
    "apply_weighted_placement",
    "apply_weighted_user",
    "placement_error",
    "CoScheduledDWPTuner",
    "DWPProbeSession",
    "DWPStep",
    "DWPTuner",
    "combine_weights",
    "dwp_probe_curve",
    "HARDENED_PROFILE",
    "HardenedCoScheduledDWPTuner",
    "HardenedDWPTuner",
    "HardeningConfig",
    "BWAPConfig",
    "bwap_init",
    "canonical_or_uniform",
    "ClassifierConfig",
    "MemoryIntensity",
    "WorkloadClassifier",
    "estimate_mapi",
    "measured_mapi",
    "AdaptiveBWAP",
    "AdaptiveConfig",
    "AdaptiveState",
    "SplitDWPTuner",
    "SplitPlacement",
    "split_bwap_init",
    "BatchedAnalyticEvaluator",
    "SearchResult",
    "hill_climb",
    "make_analytic_evaluator",
    "make_placement_evaluator",
    "search_optimal_placement",
    "uniform_workers_start",
]
