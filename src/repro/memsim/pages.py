"""Simulated virtual address spaces and page tables.

The unit of placement in the paper (and in Linux) is the 4 KB page. We model
an application's address space as a set of :class:`Segment` objects — the
``.data``/BSS segments and dynamic mappings that BWAP's user-level placement
walks (Section III-B2) — backed by a single page table that records which
NUMA node physically holds each page (or -1 while untouched, since Linux
allocates lazily on first touch).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.units import PAGE_SIZE, bytes_to_pages

#: Page-table value for a virtual page with no physical backing yet.
UNALLOCATED: int = -1


class SegmentKind(enum.Enum):
    """What the pages in a segment hold, from the placement model's view.

    The paper's system model distinguishes *shared* pages (accessed by every
    thread with uniform probability) from *thread-private* pages (accessed
    only by their owning thread); BWAP's design assumes the former dominate
    but its evaluation stresses workloads where they do not (Table I).
    """

    SHARED = "shared"
    PRIVATE = "private"


@dataclass
class Segment:
    """A contiguous virtual address range with homogeneous access semantics.

    Attributes
    ----------
    name:
        Human-readable identifier (e.g. ``"heap"``, ``"bss"``).
    start_page:
        Index of the first page within the owning address space.
    num_pages:
        Segment length in pages.
    kind:
        Shared or thread-private data.
    owner_thread:
        For private segments, the global id of the owning thread; None for
        shared segments.
    page_size:
        Bytes per page of the owning address space.
    """

    name: str
    start_page: int
    num_pages: int
    kind: SegmentKind
    owner_thread: Optional[int] = None
    page_size: int = PAGE_SIZE

    def __post_init__(self) -> None:
        if self.num_pages <= 0:
            raise ValueError(f"segment {self.name!r} must have at least one page")
        if self.start_page < 0:
            raise ValueError(f"segment {self.name!r} has negative start page")
        if self.kind is SegmentKind.PRIVATE and self.owner_thread is None:
            raise ValueError(f"private segment {self.name!r} needs an owner thread")
        if self.kind is SegmentKind.SHARED and self.owner_thread is not None:
            raise ValueError(f"shared segment {self.name!r} cannot have an owner thread")

    @property
    def end_page(self) -> int:
        """One past the last page index."""
        return self.start_page + self.num_pages

    @property
    def size_bytes(self) -> int:
        """Segment size in bytes."""
        return self.num_pages * self.page_size

    def page_range(self) -> Tuple[int, int]:
        """``(start_page, end_page)`` half-open interval."""
        return (self.start_page, self.end_page)


class AddressSpace:
    """One process's virtual memory, at page granularity.

    Pages are lazily backed: a page maps to ``UNALLOCATED`` until it is
    first touched (:meth:`touch`) or explicitly bound via the simulated
    ``mbind`` (:mod:`repro.memsim.mbind`).

    Parameters
    ----------
    num_nodes:
        Number of NUMA nodes in the machine this space lives on; used to
        validate placements and size histograms.
    page_size:
        Backing page size in bytes. Defaults to the 4 KB pages the paper
        evaluates with; pass ``2 * MiB`` to study transparent huge pages
        (the integration the paper defers as future work, citing "Large
        pages may be harmful on NUMA systems" [14]).
    """

    def __init__(self, num_nodes: int, page_size: int = PAGE_SIZE):
        if num_nodes <= 0:
            raise ValueError(f"num_nodes must be positive, got {num_nodes}")
        if page_size <= 0 or page_size % 4096 != 0:
            raise ValueError(
                f"page_size must be a positive multiple of 4096, got {page_size}"
            )
        self.num_nodes = num_nodes
        self.page_size = page_size
        self._segments: List[Segment] = []
        self._segments_by_name: Dict[str, Segment] = {}
        self._page_nodes = np.empty(0, dtype=np.int16)
        self._next_page = 0
        #: Monotonic placement version: bumped by every mutation that backs,
        #: moves, or maps pages. Lets per-epoch consumers of the placement
        #: statistics (the simulator asks every epoch) reuse memoised
        #: histograms between placement changes.
        self._version = 0
        self._hist_cache: Dict[Optional[Tuple[Tuple[int, int], ...]], np.ndarray] = {}
        self._dist_cache: Dict[Optional[Tuple[Tuple[int, int], ...]], np.ndarray] = {}

    # ------------------------------------------------------------------ #
    # Allocation
    # ------------------------------------------------------------------ #

    def map_segment(
        self,
        name: str,
        size_bytes: int,
        kind: SegmentKind = SegmentKind.SHARED,
        owner_thread: Optional[int] = None,
    ) -> Segment:
        """Reserve a new virtual segment of at least ``size_bytes`` bytes.

        No physical pages are allocated; pages start ``UNALLOCATED``.
        Segment names are unique within an address space so that
        :meth:`segment` lookups are unambiguous.
        """
        if name in self._segments_by_name:
            raise ValueError(f"segment named {name!r} already mapped")
        num_pages = bytes_to_pages(size_bytes, self.page_size)
        seg = Segment(
            name=name,
            start_page=self._next_page,
            num_pages=num_pages,
            kind=kind,
            owner_thread=owner_thread,
            page_size=self.page_size,
        )
        self._segments.append(seg)
        self._segments_by_name[name] = seg
        self._next_page += num_pages
        grown = np.full(num_pages, UNALLOCATED, dtype=np.int16)
        self._page_nodes = np.concatenate([self._page_nodes, grown])
        self._bump_version()
        return seg

    @property
    def segments(self) -> Tuple[Segment, ...]:
        """All mapped segments in mapping order."""
        return tuple(self._segments)

    @property
    def total_pages(self) -> int:
        """Total mapped pages (allocated or not)."""
        return self._next_page

    def segment(self, name: str) -> Segment:
        """Look up a segment by name (names are unique per space)."""
        try:
            return self._segments_by_name[name]
        except KeyError:
            raise KeyError(f"no segment named {name!r}") from None

    def segments_of_kind(self, kind: SegmentKind) -> Tuple[Segment, ...]:
        """All segments of the given kind."""
        return tuple(s for s in self._segments if s.kind is kind)

    # ------------------------------------------------------------------ #
    # Page-table access
    # ------------------------------------------------------------------ #

    def page_nodes(self, segment: Optional[Segment] = None) -> np.ndarray:
        """Per-page node ids (a *view*; ``UNALLOCATED`` where untouched)."""
        if segment is None:
            return self._page_nodes
        return self._page_nodes[segment.start_page : segment.end_page]

    def _check_range(self, start_page: int, num_pages: int) -> None:
        if start_page < 0 or num_pages < 0 or start_page + num_pages > self._next_page:
            raise ValueError(
                f"page range [{start_page}, {start_page + num_pages}) outside mapped "
                f"space of {self._next_page} pages"
            )

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise ValueError(f"node {node} outside machine with {self.num_nodes} nodes")

    @property
    def version(self) -> int:
        """Placement version, bumped on every mutation of the page table."""
        return self._version

    def _bump_version(self) -> None:
        self._version += 1
        self._hist_cache.clear()
        self._dist_cache.clear()

    def touch(self, segment: Segment, node: int) -> int:
        """First-touch all still-unallocated pages of a segment onto ``node``.

        Returns the number of pages that were allocated. Already-backed
        pages are left where they are, exactly like Linux first-touch.
        """
        self._check_node(node)
        view = self.page_nodes(segment)
        mask = view == UNALLOCATED
        allocated = int(mask.sum())
        if allocated:
            view[mask] = node
            self._bump_version()
        return allocated

    def set_pages(self, start_page: int, assignment: np.ndarray) -> int:
        """Directly assign nodes to a page range; returns pages *moved*.

        A page counts as moved when it was already backed on a different
        node. Newly backed pages are not migrations.
        """
        assignment = np.asarray(assignment, dtype=np.int16)
        self._check_range(start_page, len(assignment))
        if len(assignment) and (assignment.min() < 0 or assignment.max() >= self.num_nodes):
            raise ValueError("assignment contains invalid node ids")
        view = self._page_nodes[start_page : start_page + len(assignment)]
        changed = view != assignment
        moved = int(((view != UNALLOCATED) & changed).sum())
        if changed.any():
            view[:] = assignment
            self._bump_version()
        return moved

    def assign_pages(self, indices: np.ndarray, nodes: np.ndarray) -> int:
        """Scatter-assign nodes to individual pages; returns pages *moved*.

        The scattered counterpart of :meth:`set_pages`, used by the fault
        path to revert the subset of a migration batch that failed.
        """
        indices = np.asarray(indices, dtype=np.intp)
        nodes = np.asarray(nodes, dtype=np.int16)
        if indices.shape != nodes.shape:
            raise ValueError(
                f"indices and nodes must match, got {indices.shape} vs {nodes.shape}"
            )
        if len(indices) == 0:
            return 0
        if indices.min() < 0 or indices.max() >= len(self._page_nodes):
            raise IndexError("page index out of range")
        if nodes.min() < 0 or nodes.max() >= self.num_nodes:
            raise ValueError("assignment contains invalid node ids")
        current = self._page_nodes[indices]
        changed = current != nodes
        moved = int(((current != UNALLOCATED) & changed).sum())
        if changed.any():
            self._page_nodes[indices] = nodes
            self._bump_version()
        return moved

    # ------------------------------------------------------------------ #
    # Placement statistics
    # ------------------------------------------------------------------ #

    @staticmethod
    def _segments_key(
        segments: Optional[Iterable[Segment]],
    ) -> Tuple[Optional[Tuple[Tuple[int, int], ...]], Optional[List[Segment]]]:
        """Hashable cache key for a segment selection (None = whole space)."""
        if segments is None:
            return None, None
        segs = list(segments)
        return tuple(s.page_range() for s in segs), segs

    def node_histogram(self, segments: Optional[Iterable[Segment]] = None) -> np.ndarray:
        """Allocated-page counts per node over the given segments (or all).

        Memoised until the next placement mutation; the returned array is
        read-only (copy before modifying).
        """
        key, segs = self._segments_key(segments)
        cached = self._hist_cache.get(key)
        if cached is not None:
            return cached
        if segs is None:
            data = self._page_nodes
        else:
            parts = [self.page_nodes(s) for s in segs]
            data = np.concatenate(parts) if parts else np.empty(0, dtype=np.int16)
        allocated = data[data != UNALLOCATED]
        hist = np.bincount(allocated, minlength=self.num_nodes).astype(np.int64)
        hist.setflags(write=False)
        self._hist_cache[key] = hist
        return hist

    def placement_distribution(
        self, segments: Optional[Iterable[Segment]] = None
    ) -> np.ndarray:
        """Fraction of allocated pages on each node (zeros if none allocated).

        Memoised until the next placement mutation; the returned array is
        read-only (copy before modifying).
        """
        key, segs = self._segments_key(segments)
        cached = self._dist_cache.get(key)
        if cached is not None:
            return cached
        hist = self.node_histogram(segs if segs is not None else None)
        total = hist.sum()
        dist = np.zeros(self.num_nodes) if total == 0 else hist / total
        dist.setflags(write=False)
        self._dist_cache[key] = dist
        return dist

    def allocated_pages(self) -> int:
        """Number of pages with physical backing."""
        return int((self._page_nodes != UNALLOCATED).sum())

    def resident_bytes_per_node(self) -> np.ndarray:
        """Bytes resident on each node."""
        return self.node_histogram() * self.page_size
