"""A Carrefour-like traffic-management baseline (paper [21], Section IV).

The paper compares against uniform-workers because that is Carrefour's
*core placement*, noting that full Carrefour complements it with two
kernel-level optimisations it could not run: detection + co-location of
private pages, and replication of read-only pages. Our substrate has no
such limitation, so the full combination is implemented here as a
baseline: per-page-class decisions driven by observed access semantics,
with uniform-workers interleaving as the fallback for write-shared data.

Decision per segment (mirroring Carrefour's per-page classification, which
our segment-granular model expresses per segment):

* thread-private  -> co-locate on the owner's node;
* shared, read-mostly (write share below the replication threshold)
  -> replicate on every worker (reads served locally);
* shared, write-heavy -> uniform interleave across the worker nodes.

Like Carrefour — and unlike BWAP — no decision ever considers non-worker
bandwidth or interconnect asymmetry, which is precisely the gap the paper
targets.
"""

from __future__ import annotations

from typing import Optional

from repro.memsim.mbind import MbindFlag, MPol, mbind_segment
from repro.memsim.pages import AddressSpace, SegmentKind
from repro.memsim.policies import PlacementContext, PlacementPolicy, PlacementStats
from repro.memsim.replication import DEFAULT_MAX_WRITE_FRACTION


class CarrefourLike(PlacementPolicy):
    """Carrefour's placement: co-location + replication + uniform-workers.

    Parameters
    ----------
    replication_write_threshold:
        Maximum write share for which shared data is treated as read-only
        and replicated.
    """

    name = "carrefour"

    def __init__(
        self, replication_write_threshold: float = DEFAULT_MAX_WRITE_FRACTION
    ):
        if not 0 <= replication_write_threshold < 1:
            raise ValueError(
                "replication_write_threshold must be in [0, 1), got "
                f"{replication_write_threshold}"
            )
        self.replication_write_threshold = replication_write_threshold
        #: Set per application once the workload's write share is known.
        self._replicating: Optional[bool] = None

    # The engine consults this attribute when composing traffic mixes.
    @property
    def replicates_shared(self) -> bool:
        """Whether shared reads are served from local replicas."""
        return bool(self._replicating)

    def validate_workload(self, write_fraction: float) -> None:
        """Classify the workload's shared data (Carrefour's run-time
        read-only detection, done up front in our model)."""
        self._replicating = write_fraction <= self.replication_write_threshold

    def place(self, space: AddressSpace, ctx: PlacementContext) -> PlacementStats:
        if self._replicating is None:
            # No workload information (e.g. used outside an Application):
            # conservatively treat shared data as writable.
            self._replicating = False
        stats = PlacementStats()
        for seg in space.segments:
            if seg.kind is SegmentKind.PRIVATE:
                touched = space.touch(seg, ctx.node_of_thread(seg.owner_thread))
                stats += PlacementStats(pages_touched=touched)
            elif self._replicating:
                # Primary copy on the first worker; replicas implicit.
                touched = space.touch(seg, ctx.worker_nodes[0])
                stats += PlacementStats(pages_touched=touched)
            else:
                res = mbind_segment(
                    space,
                    seg,
                    MPol.INTERLEAVE,
                    ctx.worker_nodes,
                    flags=MbindFlag.MOVE | MbindFlag.STRICT,
                )
                stats += PlacementStats(res.pages_touched, res.pages_moved)
        return stats
