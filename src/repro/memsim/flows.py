"""Memory traffic description consumed by the contention solver.

The solver works on :class:`Consumer` entities: one per (application,
worker node) pair. A consumer drains memory at some aggregate rate ``R``
split across source nodes according to its *mix* — the fraction of its
accesses that target pages on each node. The mix is exactly what page
placement controls, which is why BWAP's weight distribution maps directly
onto it (paper Section III-A1: accesses hit shared pages uniformly, so the
portion read from node *i* is proportional to the weight of *i*).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np


@dataclass(frozen=True)
class Consumer:
    """One worker node's memory demand within one application.

    Attributes
    ----------
    app_id:
        Owning application identifier (used in reports and co-scheduling).
    node:
        Worker node whose threads generate this demand.
    threads:
        Number of threads pinned on the node (informational; demand already
        aggregates them).
    mix:
        Per-source-node fractions of this consumer's traffic; must sum to 1
        (or be all-zero for an idle consumer).
    demand:
        Aggregate demand in GB/s; ``inf`` models the paper's canonical
        bandwidth-intensive application whose demand always exceeds supply.
    write_fraction:
        Fraction of the traffic that is writes; the memory controller
        charges written bytes extra (see
        :class:`~repro.memsim.controller.MCModel`).
    """

    app_id: str
    node: int
    threads: int
    mix: np.ndarray
    demand: float
    write_fraction: float = 0.0

    def __post_init__(self) -> None:
        mix = np.asarray(self.mix, dtype=float)
        object.__setattr__(self, "mix", mix)
        if mix.ndim != 1:
            raise ValueError("mix must be 1-D")
        if (mix < -1e-12).any():
            raise ValueError("mix fractions must be non-negative")
        total = mix.sum()
        if total > 0 and abs(total - 1.0) > 1e-6:
            raise ValueError(f"mix must sum to 1 (or 0 for idle), got {total}")
        if self.demand < 0:
            raise ValueError(f"demand must be non-negative, got {self.demand}")
        if not 0 <= self.write_fraction <= 1:
            raise ValueError(f"write_fraction must be in [0, 1], got {self.write_fraction}")
        if self.threads < 0:
            raise ValueError(f"threads must be non-negative, got {self.threads}")
        # Cached so hot paths (idle filtering over thousands of fleet
        # candidate entries) don't re-reduce the mix array per call.
        object.__setattr__(self, "mix_total", float(total))

    @property
    def is_idle(self) -> bool:
        """True when this consumer generates no traffic."""
        return self.demand == 0 or self.mix_total == 0.0

    def key(self) -> Tuple[str, int]:
        """Stable identity used in allocation result maps."""
        return (self.app_id, self.node)


def consumer_from_placement(
    app_id: str,
    node: int,
    threads: int,
    placement_distribution: np.ndarray,
    demand: float,
    *,
    write_fraction: float = 0.0,
) -> Consumer:
    """Build a consumer whose mix follows a page-placement distribution."""
    dist = np.asarray(placement_distribution, dtype=float)
    total = dist.sum()
    mix = dist / total if total > 0 else dist
    return Consumer(
        app_id=app_id,
        node=node,
        threads=threads,
        mix=mix,
        demand=demand,
        write_fraction=write_fraction,
    )
