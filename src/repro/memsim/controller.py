"""Memory-controller contention model.

The paper (Section III-A3, citing DraMon [30] and Blagodurov et al. [25])
stresses that the *effective* bandwidth of a memory controller is a
non-linear function of the demand placed on it: concurrent access streams
from many cores and nodes destroy row-buffer locality and add scheduling
overhead at the controller, so the deliverable bandwidth drops below the
peak as more consumers contend. This module provides that de-rating curve
plus the write-traffic cost amplification.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class MCModel:
    """Parametric memory-controller efficiency model.

    Effective capacity of a controller with peak bandwidth ``B`` serving
    ``k`` distinct consumer nodes is::

        B * (floor + (1 - floor) * exp(-decay * (k - 1)))

    One consumer gets the full peak; each additional contending node erodes
    efficiency toward ``floor``. The exponential form matches the concave
    saturation DraMon measures on real controllers.

    Attributes
    ----------
    efficiency_floor:
        Asymptotic fraction of peak bandwidth under heavy multi-node
        contention (real Opterons retain roughly 70-85%).
    contention_decay:
        How quickly each extra consumer node erodes efficiency.
    write_cost_factor:
        Relative cost of a written byte vs a read byte at the controller
        (read-modify-write and turnaround penalties make writes more
        expensive; a common figure is 1.2-1.5x).
    """

    efficiency_floor: float = 0.78
    contention_decay: float = 0.35
    write_cost_factor: float = 1.3

    def __post_init__(self) -> None:
        if not 0 < self.efficiency_floor <= 1:
            raise ValueError(f"efficiency_floor must be in (0, 1], got {self.efficiency_floor}")
        if self.contention_decay < 0:
            raise ValueError(f"contention_decay must be >= 0, got {self.contention_decay}")
        if self.write_cost_factor < 1:
            raise ValueError(f"write_cost_factor must be >= 1, got {self.write_cost_factor}")

    def efficiency(self, num_consumer_nodes: int) -> float:
        """Fraction of peak bandwidth deliverable to ``num_consumer_nodes``."""
        if num_consumer_nodes < 0:
            raise ValueError(f"consumer count must be >= 0, got {num_consumer_nodes}")
        if num_consumer_nodes <= 1:
            return 1.0
        f = self.efficiency_floor
        return float(f + (1.0 - f) * np.exp(-self.contention_decay * (num_consumer_nodes - 1)))

    def effective_capacity(self, peak_bandwidth: float, num_consumer_nodes: int) -> float:
        """Deliverable bandwidth (GB/s) of a controller under contention."""
        if peak_bandwidth <= 0:
            raise ValueError(f"peak bandwidth must be positive, got {peak_bandwidth}")
        return peak_bandwidth * self.efficiency(num_consumer_nodes)

    def demand_cost(self, read_rate: float, write_rate: float) -> float:
        """Controller-cost-equivalent demand (GB/s) of a read+write mix."""
        if read_rate < 0 or write_rate < 0:
            raise ValueError("rates must be non-negative")
        return read_rate + self.write_cost_factor * write_rate


#: Default controller model used across the library unless overridden.
DEFAULT_MC_MODEL = MCModel()
