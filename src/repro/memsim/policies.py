"""Page-placement policies: the baselines the paper evaluates against.

Section IV compares BWAP to Linux's default *first-touch*, the
state-of-the-art *uniform-workers* (the core strategy of Carrefour [21] and
AsymSched [37]), *uniform-all*, and *autonuma*. Each policy here knows how
to lay out an application's address space given a :class:`PlacementContext`
and, for the adaptive ones, how to react as the run progresses.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.memsim.interleave import weighted_assignment
from repro.memsim.mbind import MbindFlag, MPol, mbind_segment
from repro.memsim.pages import AddressSpace, Segment, SegmentKind


@dataclass(frozen=True)
class PlacementContext:
    """Everything a policy needs to know about the deployment.

    Attributes
    ----------
    num_nodes:
        Node count of the machine.
    worker_nodes:
        Nodes on which the application's threads run.
    thread_nodes:
        Node of each thread, indexed by global thread id.
    init_node:
        Node of the thread that initialises shared data (relevant to
        first-touch, which the paper notes centralises shared pages there).
    """

    num_nodes: int
    worker_nodes: Tuple[int, ...]
    thread_nodes: Tuple[int, ...]
    init_node: int

    def __post_init__(self) -> None:
        if not self.worker_nodes:
            raise ValueError("worker_nodes must not be empty")
        if len(set(self.worker_nodes)) != len(self.worker_nodes):
            raise ValueError(f"duplicate worker nodes: {self.worker_nodes}")
        for w in self.worker_nodes:
            if not 0 <= w < self.num_nodes:
                raise ValueError(f"worker node {w} outside machine of {self.num_nodes} nodes")
        for t, nd in enumerate(self.thread_nodes):
            if nd not in self.worker_nodes:
                raise ValueError(f"thread {t} pinned to non-worker node {nd}")
        if self.init_node not in self.worker_nodes:
            raise ValueError(f"init node {self.init_node} is not a worker node")

    @property
    def num_threads(self) -> int:
        """Total threads in the deployment."""
        return len(self.thread_nodes)

    def node_of_thread(self, thread_id: int) -> int:
        """Worker node hosting a thread."""
        return self.thread_nodes[thread_id]

    def all_nodes(self) -> Tuple[int, ...]:
        """All node ids of the machine."""
        return tuple(range(self.num_nodes))

    def non_worker_nodes(self) -> Tuple[int, ...]:
        """Nodes hosting no application threads."""
        workers = set(self.worker_nodes)
        return tuple(n for n in range(self.num_nodes) if n not in workers)


@dataclass(frozen=True)
class PlacementStats:
    """Pages touched/moved while applying (or adapting) a placement."""

    pages_touched: int = 0
    pages_moved: int = 0

    def __add__(self, other: "PlacementStats") -> "PlacementStats":
        return PlacementStats(
            pages_touched=self.pages_touched + other.pages_touched,
            pages_moved=self.pages_moved + other.pages_moved,
        )


class PlacementPolicy(abc.ABC):
    """Interface all placement strategies implement."""

    #: Short name used in figures and reports (matches the paper's labels).
    name: str = "abstract"

    @abc.abstractmethod
    def place(self, space: AddressSpace, ctx: PlacementContext) -> PlacementStats:
        """Perform the initial placement of every segment."""

    def step(
        self, space: AddressSpace, ctx: PlacementContext, epoch: int
    ) -> PlacementStats:
        """Adapt the placement during execution (no-op for static policies)."""
        return PlacementStats()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


class FirstTouch(PlacementPolicy):
    """Linux default: a page lands on the node of the thread that touches it.

    Shared data is initialised by one thread, so shared pages centralise on
    the init node; each thread's private pages land on its own node. The
    paper (Section IV-A) finds this is usually the worst multi-worker
    strategy for memory-intensive applications.
    """

    name = "first-touch"

    def place(self, space: AddressSpace, ctx: PlacementContext) -> PlacementStats:
        touched = 0
        for seg in space.segments:
            if seg.kind is SegmentKind.PRIVATE:
                touched += space.touch(seg, ctx.node_of_thread(seg.owner_thread))
            else:
                touched += space.touch(seg, ctx.init_node)
        return PlacementStats(pages_touched=touched)


class _InterleavePolicy(PlacementPolicy):
    """Common machinery for uniform interleaving over a node set."""

    def _nodes(self, ctx: PlacementContext) -> Tuple[int, ...]:
        raise NotImplementedError

    def place(self, space: AddressSpace, ctx: PlacementContext) -> PlacementStats:
        nodes = self._nodes(ctx)
        stats = PlacementStats()
        for seg in space.segments:
            res = mbind_segment(
                space, seg, MPol.INTERLEAVE, nodes, flags=MbindFlag.MOVE | MbindFlag.STRICT
            )
            stats += PlacementStats(res.pages_touched, res.pages_moved)
        return stats


class UniformWorkers(_InterleavePolicy):
    """Round-robin across worker nodes only — the state-of-the-art baseline.

    This is the core placement of Carrefour and AsymSched and the
    recommended practice for NUMA databases; the paper's thesis is that it
    wastes non-worker bandwidth and ignores asymmetry.
    """

    name = "uniform-workers"

    def _nodes(self, ctx: PlacementContext) -> Tuple[int, ...]:
        return ctx.worker_nodes


class UniformAll(_InterleavePolicy):
    """Round-robin across *all* nodes, workers and non-workers alike."""

    name = "uniform-all"

    def _nodes(self, ctx: PlacementContext) -> Tuple[int, ...]:
        return ctx.all_nodes()


class WeightedInterleave(PlacementPolicy):
    """Static weighted interleave with a fixed weight distribution.

    This is the placement BWAP enforces once weights are decided; exposed
    separately so experiments can evaluate arbitrary weight vectors (e.g.
    the offline n-dimensional search of Fig. 1b).
    """

    name = "weighted-interleave"

    def __init__(self, weights: Sequence[float]):
        w = np.asarray(weights, dtype=float)
        if (w < 0).any() or w.sum() <= 0:
            raise ValueError(f"weights must be non-negative and not all zero, got {w}")
        self.weights = w / w.sum()

    def place(self, space: AddressSpace, ctx: PlacementContext) -> PlacementStats:
        if len(self.weights) != ctx.num_nodes:
            raise ValueError(
                f"{len(self.weights)} weights for machine of {ctx.num_nodes} nodes"
            )
        nodes = ctx.all_nodes()
        stats = PlacementStats()
        for seg in space.segments:
            res = mbind_segment(
                space,
                seg,
                MPol.WEIGHTED_INTERLEAVE,
                nodes,
                weights=self.weights,
                flags=MbindFlag.MOVE | MbindFlag.STRICT,
            )
            stats += PlacementStats(res.pages_touched, res.pages_moved)
        return stats


class AutoNUMA(PlacementPolicy):
    """Linux's locality-driven balancer, approximated.

    AutoNUMA starts from first-touch and then iteratively migrates pages
    toward the nodes whose threads access them: private pages converge to
    their owner's node, shared pages spread evenly across the worker nodes
    that access them. It never considers non-worker bandwidth or link
    asymmetry — the deficiency the paper highlights. The convergence is
    gradual, one `migration_fraction` of the outstanding pages per epoch.
    """

    name = "autonuma"

    def __init__(self, migration_fraction: float = 0.5, convergence_epochs: int = 4):
        if not 0 < migration_fraction <= 1:
            raise ValueError(f"migration_fraction must be in (0, 1], got {migration_fraction}")
        if convergence_epochs < 1:
            raise ValueError(f"convergence_epochs must be >= 1, got {convergence_epochs}")
        self.migration_fraction = migration_fraction
        self.convergence_epochs = convergence_epochs

    def place(self, space: AddressSpace, ctx: PlacementContext) -> PlacementStats:
        return FirstTouch().place(space, ctx)

    def step(
        self, space: AddressSpace, ctx: PlacementContext, epoch: int
    ) -> PlacementStats:
        if epoch >= self.convergence_epochs:
            return PlacementStats()
        moved = 0
        for seg in space.segments:
            target = self._target_assignment(seg, ctx)
            view = space.page_nodes(seg)
            mismatched = np.nonzero(view != target)[0]
            if len(mismatched) == 0:
                continue
            n_move = max(1, int(len(mismatched) * self.migration_fraction))
            chosen = mismatched[:n_move]
            new = view.copy()
            new[chosen] = target[chosen]
            moved += space.set_pages(seg.start_page, new)
        return PlacementStats(pages_moved=moved)

    def _target_assignment(self, seg: Segment, ctx: PlacementContext) -> np.ndarray:
        if seg.kind is SegmentKind.PRIVATE:
            return np.full(seg.num_pages, ctx.node_of_thread(seg.owner_thread), dtype=np.int16)
        # Shared pages: balanced across accessing (worker) nodes.
        from repro.memsim.interleave import uniform_assignment

        return uniform_assignment(seg.num_pages, ctx.worker_nodes, phase=seg.start_page)


def policy_by_name(name: str, **kwargs) -> PlacementPolicy:
    """Instantiate a baseline policy from its paper label."""
    registry = {
        FirstTouch.name: FirstTouch,
        UniformWorkers.name: UniformWorkers,
        UniformAll.name: UniformAll,
        AutoNUMA.name: AutoNUMA,
    }
    try:
        cls = registry[name]
    except KeyError:
        raise KeyError(
            f"unknown policy {name!r}; available: {sorted(registry)} "
            "(weighted-interleave and bwap are constructed explicitly)"
        ) from None
    return cls(**kwargs)
