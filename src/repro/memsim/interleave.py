"""Page-to-node assignment generators for interleaved placements.

Two assignment schemes are needed by the paper:

* **Uniform interleave** — Linux ``MPOL_INTERLEAVE``: round-robin by page
  index over a node set. This is what ``uniform-workers``/``uniform-all``
  and the inner calls of BWAP's Algorithm 1 use.
* **Weighted interleave** — the kernel-level policy the authors added: each
  node receives a page share proportional to its weight, with pages of the
  different nodes finely interleaved (not in contiguous blocks).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def uniform_assignment(
    num_pages: int, nodes: Sequence[int], *, phase: int = 0
) -> np.ndarray:
    """Round-robin page assignment over ``nodes``.

    ``phase`` offsets the round-robin position, mirroring how Linux
    interleaving continues from the current position rather than restarting
    per ``mbind`` call.
    """
    nodes = _validated_nodes(nodes)
    if num_pages < 0:
        raise ValueError(f"num_pages must be non-negative, got {num_pages}")
    idx = (np.arange(num_pages) + phase) % len(nodes)
    return nodes[idx]


def weighted_counts(num_pages: int, weights: Sequence[float]) -> np.ndarray:
    """Apportion ``num_pages`` across nodes by weight (largest remainder).

    Exact: counts sum to ``num_pages`` and differ from the ideal share by
    less than one page per node.
    """
    w = np.asarray(weights, dtype=float)
    if w.ndim != 1 or len(w) == 0:
        raise ValueError("weights must be a non-empty 1-D sequence")
    if (w < 0).any():
        raise ValueError("weights must be non-negative")
    total = w.sum()
    if total <= 0:
        raise ValueError("weights must not all be zero")
    if num_pages < 0:
        raise ValueError(f"num_pages must be non-negative, got {num_pages}")
    ideal = w / total * num_pages
    counts = np.floor(ideal).astype(np.int64)
    remainder = num_pages - counts.sum()
    if remainder > 0:
        frac = ideal - counts
        # Highest fractional parts get the leftover pages; ties broken by
        # node index for determinism.
        order = np.lexsort((np.arange(len(w)), -frac))
        counts[order[:remainder]] += 1
    return counts


def weighted_assignment(
    num_pages: int, weights: Sequence[float], nodes: Sequence[int] = None
) -> np.ndarray:
    """Exact weighted interleave: per-node counts follow ``weights`` and the
    pages of different nodes are evenly interspersed.

    This models the kernel-level weighted-interleave policy of
    Section III-B2. The interspersion uses the even-spacing trick: node
    ``k``'s ``c_k`` pages are placed at virtual positions
    ``(i + 0.5) / c_k`` and all positions are merged by sorting, which keeps
    every prefix of the assignment close to the target ratio.
    """
    if nodes is None:
        nodes = np.arange(len(np.atleast_1d(np.asarray(weights))))
    nodes = _validated_nodes(nodes)
    w = np.asarray(weights, dtype=float)
    if len(w) != len(nodes):
        raise ValueError(f"{len(w)} weights for {len(nodes)} nodes")
    counts = weighted_counts(num_pages, w)
    labels = np.repeat(nodes, counts)
    positions = np.concatenate(
        [
            (np.arange(c) + 0.5) / c if c > 0 else np.empty(0)
            for c in counts
        ]
    )
    order = np.argsort(positions, kind="stable")
    return labels[order]


def _validated_nodes(nodes: Sequence[int]) -> np.ndarray:
    arr = np.asarray(list(nodes), dtype=np.int16)
    if arr.ndim != 1 or len(arr) == 0:
        raise ValueError("node set must be a non-empty 1-D sequence")
    if len(np.unique(arr)) != len(arr):
        raise ValueError(f"node set contains duplicates: {list(arr)}")
    if (arr < 0).any():
        raise ValueError("node ids must be non-negative")
    return arr
