"""Page-migration accounting and cost model.

The DWP tuner adapts the weight distribution *on-line* by incrementally
migrating pages (paper Section III-B2). Migrations are not free — the paper
measures up to 4% total overhead — so the simulator charges each moved page
a cost (kernel bookkeeping + TLB shootdown + the copy itself) and exposes
cumulative statistics per application for the overhead experiments.

The cost model is page-size aware: a 4 KB page costs ~1.5 us (the fixed
overhead dominates), while a 2 MB huge page is copy-dominated — one of the
reasons the paper defers huge-page integration as future work [14].
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.units import PAGE_SIZE

#: Fixed per-page kernel overhead (unmap, remap, TLB shootdown), seconds.
DEFAULT_FIXED_COST_S: float = 2.2e-7

#: Sustained single-page copy bandwidth, GB/s.
DEFAULT_COPY_BANDWIDTH_GBPS: float = 3.2

#: Cost of migrating one 4 KB page under the defaults (for reference).
DEFAULT_PAGE_MIGRATION_COST_S: float = (
    DEFAULT_FIXED_COST_S + PAGE_SIZE / (DEFAULT_COPY_BANDWIDTH_GBPS * 1e9)
)


@dataclass
class MigrationStats:
    """Cumulative migration activity of one application.

    ``pages_failed`` / ``rejected_calls`` / ``retries`` only move when a
    fault plan injects migration faults (see :mod:`repro.faults`); on a
    fault-free run they stay zero.
    """

    pages_moved: int = 0
    migration_calls: int = 0
    time_spent_s: float = 0.0
    bytes_moved: int = 0
    pages_failed: int = 0
    rejected_calls: int = 0
    retries: int = 0


class MigrationEngine:
    """Tracks migrations and converts them to time charged to applications.

    Parameters
    ----------
    fixed_cost_s:
        Per-page kernel overhead in seconds, independent of page size.
    copy_bandwidth_gbps:
        Rate at which page payloads are copied between nodes.
    """

    def __init__(
        self,
        fixed_cost_s: float = DEFAULT_FIXED_COST_S,
        copy_bandwidth_gbps: float = DEFAULT_COPY_BANDWIDTH_GBPS,
    ):
        if fixed_cost_s < 0:
            raise ValueError(f"fixed cost must be non-negative, got {fixed_cost_s}")
        if copy_bandwidth_gbps <= 0:
            raise ValueError(
                f"copy bandwidth must be positive, got {copy_bandwidth_gbps}"
            )
        self.fixed_cost_s = fixed_cost_s
        self.copy_bandwidth_gbps = copy_bandwidth_gbps
        self._stats: Dict[str, MigrationStats] = {}

    def page_cost_s(self, page_size: int = PAGE_SIZE) -> float:
        """Seconds charged per migrated page of the given size."""
        if page_size <= 0:
            raise ValueError(f"page size must be positive, got {page_size}")
        return self.fixed_cost_s + page_size / (self.copy_bandwidth_gbps * 1e9)

    def record(
        self, app_id: str, pages_moved: int, page_size: int = PAGE_SIZE
    ) -> float:
        """Record a migration batch; returns the time cost in seconds."""
        if not isinstance(pages_moved, (int, np.integer)):
            raise TypeError(
                f"pages_moved must be an integer, got {type(pages_moved).__name__}"
            )
        if pages_moved < 0:
            raise ValueError(f"pages_moved must be non-negative, got {pages_moved}")
        stats = self._stats.setdefault(app_id, MigrationStats())
        cost = pages_moved * self.page_cost_s(page_size)
        stats.pages_moved += pages_moved
        stats.migration_calls += 1
        stats.time_spent_s += cost
        stats.bytes_moved += pages_moved * page_size
        return cost

    def record_failed(self, app_id: str, pages_failed: int) -> None:
        """Account pages that a faulty migration batch left on their old
        nodes (no time cost: the kernel gives up on them cheaply)."""
        if not isinstance(pages_failed, (int, np.integer)):
            raise TypeError(
                f"pages_failed must be an integer, got {type(pages_failed).__name__}"
            )
        if pages_failed < 0:
            raise ValueError(f"pages_failed must be non-negative, got {pages_failed}")
        self._stats.setdefault(app_id, MigrationStats()).pages_failed += pages_failed

    def record_rejection(self, app_id: str) -> None:
        """Account a transiently rejected (EBUSY-style) migration call."""
        self._stats.setdefault(app_id, MigrationStats()).rejected_calls += 1

    def record_retry(self, app_id: str) -> None:
        """Account a replay of a previously rejected migration batch."""
        self._stats.setdefault(app_id, MigrationStats()).retries += 1

    def stats(self, app_id: str) -> MigrationStats:
        """Cumulative stats for an application (zeros when none recorded)."""
        return self._stats.get(app_id, MigrationStats())

    def total_pages_moved(self) -> int:
        """Pages moved across all applications."""
        return sum(s.pages_moved for s in self._stats.values())

    def reset(self) -> None:
        """Forget all recorded activity."""
        self._stats.clear()
