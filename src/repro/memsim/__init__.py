"""Memory-system simulator: pages, placement, contention, migration.

This package is the substrate replacing the Linux VM + real memory system
in the paper's evaluation: a page-granular address-space model with
``mbind`` semantics, the baseline placement policies, a steady-state
bandwidth-contention solver, and migration cost accounting.
"""

from repro.memsim.pages import UNALLOCATED, AddressSpace, Segment, SegmentKind
from repro.memsim.interleave import (
    uniform_assignment,
    weighted_assignment,
    weighted_counts,
)
from repro.memsim.mbind import MbindFlag, MbindResult, MPol, mbind, mbind_segment
from repro.memsim.controller import DEFAULT_MC_MODEL, MCModel
from repro.memsim.flows import Consumer, consumer_from_placement
from repro.memsim.contention import (
    Allocation,
    SolverCache,
    candidate_rate_bound,
    consumers_fingerprint,
    isolated_bandwidth_matrix,
    proportional_profile,
    solve,
    solve_batch,
    solve_batch_fleet,
    solve_batch_fleet_lazy,
    FleetBatch,
)
from repro.memsim.policies import (
    AutoNUMA,
    FirstTouch,
    PlacementContext,
    PlacementPolicy,
    PlacementStats,
    UniformAll,
    UniformWorkers,
    WeightedInterleave,
    policy_by_name,
)
from repro.memsim.carrefour import CarrefourLike
from repro.memsim.replication import ReplicatedShared
from repro.memsim.migration import (
    DEFAULT_PAGE_MIGRATION_COST_S,
    MigrationEngine,
    MigrationStats,
)

__all__ = [
    "UNALLOCATED",
    "AddressSpace",
    "Segment",
    "SegmentKind",
    "uniform_assignment",
    "weighted_assignment",
    "weighted_counts",
    "MbindFlag",
    "MbindResult",
    "MPol",
    "mbind",
    "mbind_segment",
    "DEFAULT_MC_MODEL",
    "MCModel",
    "Consumer",
    "consumer_from_placement",
    "Allocation",
    "SolverCache",
    "candidate_rate_bound",
    "consumers_fingerprint",
    "isolated_bandwidth_matrix",
    "proportional_profile",
    "solve",
    "solve_batch",
    "solve_batch_fleet",
    "solve_batch_fleet_lazy",
    "FleetBatch",
    "AutoNUMA",
    "FirstTouch",
    "PlacementContext",
    "PlacementPolicy",
    "PlacementStats",
    "UniformAll",
    "UniformWorkers",
    "WeightedInterleave",
    "policy_by_name",
    "CarrefourLike",
    "ReplicatedShared",
    "DEFAULT_PAGE_MIGRATION_COST_S",
    "MigrationEngine",
    "MigrationStats",
]
