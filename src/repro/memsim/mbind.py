"""Simulated ``mbind(2)`` — the syscall BWAP's placement is built on.

BWAP's user-level weighted interleaving (paper Algorithm 1) issues a small
number of ``mbind`` calls with ``MPOL_INTERLEAVE`` over nested node sets,
relying on ``MPOL_MF_MOVE``/``MPOL_MF_STRICT`` to migrate already-allocated
pages when the DWP tuner changes weights mid-run. We reproduce those
semantics over the simulated :class:`~repro.memsim.pages.AddressSpace`,
including the limitation the paper calls out: ``mbind`` only *narrowing*
re-interleaves migrate cleanly; the reverse operation is unsupported.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.memsim.interleave import uniform_assignment, weighted_assignment
from repro.memsim.pages import UNALLOCATED, AddressSpace


class MPol(enum.Enum):
    """Memory policies supported by the simulated ``mbind``."""

    DEFAULT = "default"
    BIND = "bind"
    PREFERRED = "preferred"
    INTERLEAVE = "interleave"
    #: The kernel-level weighted-interleave policy added by the paper's
    #: authors (Section III-B2, "at the kernel level ... a new policy").
    WEIGHTED_INTERLEAVE = "weighted-interleave"


class MbindFlag(enum.IntFlag):
    """``mbind`` mode flags (subset relevant to the paper)."""

    NONE = 0
    #: Migrate pages that do not conform to the new policy.
    MOVE = 1
    #: Fail loudly when pages cannot conform (we model this as validation).
    STRICT = 2


@dataclass(frozen=True)
class MbindResult:
    """Outcome of one ``mbind`` call.

    Attributes
    ----------
    pages_touched:
        Pages newly given physical backing by this call.
    pages_moved:
        Pages migrated from one node to another (these cost time; the
        migration engine charges them to the application).
    """

    pages_touched: int
    pages_moved: int


def mbind(
    space: AddressSpace,
    start_page: int,
    num_pages: int,
    policy: MPol,
    nodes: Sequence[int],
    *,
    weights: Sequence[float] = None,
    flags: MbindFlag = MbindFlag.NONE,
    phase: int = 0,
) -> MbindResult:
    """Apply a memory policy to ``num_pages`` pages starting at ``start_page``.

    Unallocated pages are always bound according to the policy (as if the
    policy were recorded and applied on first touch). Already-backed pages
    are only migrated when ``MbindFlag.MOVE`` is set, matching Linux.

    Parameters
    ----------
    weights:
        Required for ``MPol.WEIGHTED_INTERLEAVE``; one weight per entry of
        ``nodes``.
    phase:
        Round-robin phase for ``MPol.INTERLEAVE`` (continuation across
        calls).
    """
    if num_pages < 0:
        raise ValueError(f"num_pages must be non-negative, got {num_pages}")
    if num_pages == 0:
        return MbindResult(pages_touched=0, pages_moved=0)

    node_list = list(nodes)
    if policy in (MPol.BIND, MPol.PREFERRED):
        if len(node_list) != 1:
            raise ValueError(f"{policy.value} policy takes exactly one node, got {node_list}")
        assignment = np.full(num_pages, node_list[0], dtype=np.int16)
    elif policy is MPol.INTERLEAVE:
        assignment = uniform_assignment(num_pages, node_list, phase=phase)
    elif policy is MPol.WEIGHTED_INTERLEAVE:
        if weights is None:
            raise ValueError("weighted-interleave requires weights")
        assignment = weighted_assignment(num_pages, weights, node_list)
    elif policy is MPol.DEFAULT:
        # DEFAULT restores first-touch behaviour; nothing to bind now.
        return MbindResult(pages_touched=0, pages_moved=0)
    else:  # pragma: no cover - enum is closed
        raise ValueError(f"unsupported policy {policy}")

    view = space.page_nodes()[start_page : start_page + num_pages]
    if len(view) != num_pages:
        raise ValueError(
            f"page range [{start_page}, {start_page + num_pages}) outside mapped space"
        )

    unbacked = view == UNALLOCATED
    nonconforming = (~unbacked) & (view != assignment)

    if MbindFlag.MOVE in flags:
        final = assignment
        moved = int(nonconforming.sum())
    else:
        if MbindFlag.STRICT in flags and nonconforming.any():
            raise PermissionError(
                f"mbind(STRICT) without MOVE: {int(nonconforming.sum())} pages already "
                "placed on non-conforming nodes"
            )
        final = np.where(unbacked, assignment, view)
        moved = 0

    space.set_pages(start_page, final)
    return MbindResult(pages_touched=int(unbacked.sum()), pages_moved=moved)


def mbind_segment(
    space: AddressSpace,
    segment,
    policy: MPol,
    nodes: Sequence[int],
    *,
    weights: Sequence[float] = None,
    flags: MbindFlag = MbindFlag.NONE,
) -> MbindResult:
    """Convenience wrapper applying :func:`mbind` to a whole segment."""
    return mbind(
        space,
        segment.start_page,
        segment.num_pages,
        policy,
        nodes,
        weights=weights,
        flags=flags,
        phase=segment.start_page,
    )
