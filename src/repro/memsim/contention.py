"""Steady-state bandwidth allocation under contention and congestion.

This module computes what the real memory system does implicitly: given the
traffic every worker node generates (its demand and source mix), determine
the rate each worker actually achieves once memory-controller contention,
link congestion, and ingress-port limits are accounted for. The paper's
Section III-A3 lists exactly these phenomena as the reason the
``bw(src -> dst)`` function is demand-dependent.

Two allocation disciplines are provided:

* :func:`solve` — max-min fair **progressive filling** across consumers,
  used to model steady-state application execution: all consumers' rates
  rise together until a resource saturates, which freezes the consumers
  crossing it; the remainder keep growing.
* :func:`proportional_profile` — **proportional throttling** of independent
  per-pair flows, used to model the canonical tuner's profiling benchmark:
  with deep memory-level parallelism each source channel runs at its own
  capability, and when a shared resource saturates all of its flows scale
  down proportionally. This preserves the relative asymmetry between pairs,
  which is the signal the canonical tuner needs.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from repro.memsim.controller import DEFAULT_MC_MODEL, MCModel
from repro.memsim.flows import Consumer
from repro.topology.machine import Machine

#: Numerical slack used when deciding resource saturation.
_EPS = 1e-9

#: Resource keys are ('mc', node), ('link', src, dst), or ('ingress', node).
ResourceKey = Tuple


@dataclass
class Allocation:
    """Result of a contention solve.

    Attributes
    ----------
    rates:
        Achieved aggregate rate (GB/s) per consumer, keyed by
        ``(app_id, node)``.
    utilization:
        Load / capacity per resource (see module docs for key format).
    bottleneck:
        For each consumer, the resource that froze its growth (None when
        the consumer was satisfied by its own demand cap).
    capacities:
        Effective capacity per resource used by this solve (after MC
        de-rating).
    """

    rates: Dict[Tuple[str, int], float]
    utilization: Dict[ResourceKey, float]
    bottleneck: Dict[Tuple[str, int], Optional[ResourceKey]]
    capacities: Dict[ResourceKey, float]

    def rate(self, app_id: str, node: int) -> float:
        """Achieved rate of one consumer."""
        return self.rates[(app_id, node)]

    def app_rates(self, app_id: str) -> Dict[int, float]:
        """Per-worker-node rates of one application."""
        return {node: r for (aid, node), r in self.rates.items() if aid == app_id}

    def app_total_rate(self, app_id: str) -> float:
        """Aggregate achieved rate of one application across its workers."""
        return sum(self.app_rates(app_id).values())

    def resource_utilization(self, key: ResourceKey) -> float:
        """Utilization of one resource (0 when unused)."""
        return self.utilization.get(key, 0.0)


def consumers_fingerprint(
    consumers: Sequence[Consumer], mc_model: MCModel = DEFAULT_MC_MODEL
) -> Hashable:
    """Exact, hashable identity of a contention-solve input.

    Two inputs with equal fingerprints produce bitwise-identical
    :class:`Allocation` results from :func:`solve` (the machine is assumed
    fixed — cache per machine). Every quantity `solve` reads is folded in:
    the consumer identities, demands, write fractions, and the raw bytes of
    each mix vector, plus the MC model parameters.
    """
    return (
        mc_model.efficiency_floor,
        mc_model.contention_decay,
        mc_model.write_cost_factor,
        tuple(
            (
                c.app_id,
                c.node,
                c.demand,
                c.write_fraction,
                np.ascontiguousarray(c.mix, dtype=float).tobytes(),
            )
            for c in consumers
        ),
    )


class SolverCache:
    """LRU cache of :func:`solve` results keyed by input fingerprint.

    The simulator's inner loop re-solves the machine-wide allocation every
    epoch, but between placement changes (DWP steps, policy migrations, app
    arrival/finish) the consumer set is bit-for-bit identical — the solve
    is pure, so its previous :class:`Allocation` can be replayed. A small
    LRU (rather than a single slot) also captures tuner probe phases that
    alternate between a handful of placements.
    """

    def __init__(self, maxsize: int = 128):
        if maxsize < 1:
            raise ValueError(f"maxsize must be positive, got {maxsize}")
        self.maxsize = maxsize
        self._entries: "OrderedDict[Hashable, Allocation]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def clear(self) -> None:
        """Drop all entries (statistics are kept)."""
        self._entries.clear()

    def solve(
        self,
        machine: Machine,
        consumers: Sequence[Consumer],
        mc_model: MCModel = DEFAULT_MC_MODEL,
    ) -> Allocation:
        """Like :func:`solve`, but replaying a cached result when possible.

        One cache instance must only ever see one machine: the fingerprint
        deliberately excludes the (immutable, identity-stable) machine.
        """
        key = consumers_fingerprint(consumers, mc_model)
        return self.solve_keyed(key, machine, consumers, mc_model)

    def solve_keyed(
        self,
        key: Hashable,
        machine: Machine,
        consumers: Sequence[Consumer],
        mc_model: MCModel = DEFAULT_MC_MODEL,
    ) -> Allocation:
        """Like :meth:`solve` with a precomputed fingerprint.

        For callers (the simulator) that also key their own derived caches
        on the fingerprint and must not pay for computing it twice.
        """
        hit = self._entries.get(key)
        if hit is not None:
            self.hits += 1
            self._entries.move_to_end(key)
            return hit
        self.misses += 1
        alloc = solve(machine, consumers, mc_model)
        self._entries[key] = alloc
        if len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
        return alloc


def _pair_link_table(
    machine: Machine,
) -> Dict[Tuple[int, int], Tuple[Tuple[ResourceKey, float, float], ...]]:
    """Per-machine table of link resources on every remote (src, dst) pair.

    Each entry is ``(link_key, per-unit coefficient, capacity)`` with the
    multi-hop forwarding overhead folded into the coefficient. Machines are
    immutable, so the table is computed once and memoised on the machine —
    the contention solver runs every simulated epoch and must not re-walk
    routes each time.
    """
    cache = getattr(machine, "_contention_pair_links", None)
    if cache is None:
        cache = {}
        for src in range(machine.num_nodes):
            for dst in range(machine.num_nodes):
                if src == dst:
                    continue
                route = machine.route(src, dst)
                overhead = 1.0 / (machine.hop_efficiency ** max(0, route.hops - 1))
                cache[(src, dst)] = tuple(
                    (("link", link.src, link.dst), overhead, link.capacity)
                    for link in route.links
                )
        machine._contention_pair_links = cache  # type: ignore[attr-defined]
    return cache


def _consumer_resource_coefficients(
    machine: Machine, consumer: Consumer, write_scale: float
) -> Dict[ResourceKey, float]:
    """Per-resource capacity consumed per unit of consumer rate.

    A consumer running at rate ``R`` pulls ``R * mix[i]`` from each source
    node ``i``. That traffic costs:

    * ``mix[i] * write_scale`` at the source memory controller (writes are
      dearer there);
    * ``mix[i] / hop_eff^(hops-1)`` on every link of the route (multi-hop
      forwarding overhead consumes extra link capacity);
    * ``mix[i]`` of the consumer node's remote-ingress port when the source
      is remote.
    """
    coeffs: Dict[ResourceKey, float] = {}
    w = consumer.node
    pair_links = _pair_link_table(machine)
    for src, frac in enumerate(consumer.mix):
        if frac <= 0:
            continue
        key_mc = ("mc", src)
        coeffs[key_mc] = coeffs.get(key_mc, 0.0) + frac * write_scale
        if src == w:
            continue
        for key_l, overhead, _cap in pair_links[(src, w)]:
            coeffs[key_l] = coeffs.get(key_l, 0.0) + frac * overhead
        key_in = ("ingress", w)
        coeffs[key_in] = coeffs.get(key_in, 0.0) + frac
    return coeffs


def _resource_capacities(
    machine: Machine,
    consumers: Sequence[Consumer],
    mc_model: MCModel,
) -> Dict[ResourceKey, float]:
    """Effective capacities of every resource any consumer touches."""
    # MC de-rating depends on how many distinct consumer nodes read a node.
    readers: Dict[int, set] = {}
    for c in consumers:
        for src, frac in enumerate(c.mix):
            if frac > 0:
                readers.setdefault(src, set()).add(c.node)

    caps: Dict[ResourceKey, float] = {}
    pair_links = _pair_link_table(machine)
    for src, nodes in readers.items():
        peak = machine.node(src).local_bandwidth
        caps[("mc", src)] = mc_model.effective_capacity(peak, len(nodes))
    for c in consumers:
        for src, frac in enumerate(c.mix):
            if frac <= 0 or src == c.node:
                continue
            for key_l, _overhead, capacity in pair_links[(src, c.node)]:
                caps[key_l] = capacity
        ingress = machine.ingress_capacity(c.node)
        if np.isfinite(ingress):
            caps[("ingress", c.node)] = ingress
    return caps


def solve(
    machine: Machine,
    consumers: Sequence[Consumer],
    mc_model: MCModel = DEFAULT_MC_MODEL,
) -> Allocation:
    """Max-min fair progressive filling across consumers.

    All non-idle consumers' rates grow at the same pace. When a resource
    saturates, every consumer with positive share in it freezes; when a
    consumer reaches its demand cap it freezes satisfied. Terminates after
    at most ``len(resources) + len(consumers)`` rounds.
    """
    live = [c for c in consumers if not c.is_idle]
    rates: Dict[Tuple[str, int], float] = {c.key(): 0.0 for c in consumers}
    bottleneck: Dict[Tuple[str, int], Optional[ResourceKey]] = {
        c.key(): None for c in consumers
    }
    if not live:
        return Allocation(rates=rates, utilization={}, bottleneck=bottleneck, capacities={})

    keys = [c.key() for c in live]
    if len(set(keys)) != len(keys):
        raise ValueError(f"duplicate consumer keys: {sorted(keys)}")

    write_scales = [
        1.0 + c.write_fraction * (mc_model.write_cost_factor - 1.0) for c in live
    ]
    coeffs = [
        _consumer_resource_coefficients(machine, c, ws)
        for c, ws in zip(live, write_scales)
    ]
    caps = _resource_capacities(machine, live, mc_model)

    n = len(live)
    r = np.zeros(n)
    demand = np.array([c.demand for c in live])
    active = np.ones(n, dtype=bool)

    # Dense per-resource coefficient matrix for vectorised load computation.
    res_keys: List[ResourceKey] = sorted(caps.keys())
    res_index = {k: i for i, k in enumerate(res_keys)}
    A = np.zeros((len(res_keys), n))
    for j, cf in enumerate(coeffs):
        for k, v in cf.items():
            A[res_index[k], j] = v
    cap_vec = np.array([caps[k] for k in res_keys])

    for _ in range(len(res_keys) + n + 1):
        if not active.any():
            break
        load = A @ r
        growth = A @ active.astype(float)
        with np.errstate(divide="ignore", invalid="ignore"):
            room = np.where(growth > _EPS, (cap_vec - load) / growth, np.inf)
        room = np.clip(room, 0.0, None)
        cap_headroom = np.where(active, demand - r, np.inf)
        delta = min(room.min(initial=np.inf), cap_headroom.min(initial=np.inf))
        if not np.isfinite(delta):
            # Every active consumer is unbounded and touches no finite
            # resource — cannot happen on a real machine, but guard anyway.
            raise RuntimeError("unbounded allocation: consumer touches no finite resource")
        r[active] += delta

        load = A @ r
        saturated = (cap_vec - load) <= _EPS * np.maximum(cap_vec, 1.0)
        newly_frozen = np.zeros(n, dtype=bool)
        for ri in np.nonzero(saturated)[0]:
            users = (A[ri] > _EPS) & active
            for j in np.nonzero(users)[0]:
                if bottleneck[live[j].key()] is None:
                    bottleneck[live[j].key()] = res_keys[ri]
            newly_frozen |= users
        satisfied = active & (r >= demand - _EPS)
        newly_frozen |= satisfied
        if not newly_frozen.any():
            # Nothing froze: numerical corner; freeze the tightest resource's
            # users to guarantee progress.
            tight = int(np.argmin(cap_vec - load))
            users = (A[tight] > _EPS) & active
            if not users.any():
                break
            newly_frozen |= users
        active &= ~newly_frozen

    for c, rate in zip(live, r):
        rates[c.key()] = float(rate)
    load = A @ r
    utilization = {
        k: float(load[i] / cap_vec[i]) if cap_vec[i] > 0 else 0.0
        for k, i in res_index.items()
    }
    return Allocation(
        rates=rates,
        utilization=utilization,
        bottleneck=bottleneck,
        capacities={k: float(cap_vec[res_index[k]]) for k in res_keys},
    )


def proportional_profile(
    machine: Machine,
    worker_nodes: Sequence[int],
    mc_model: MCModel = DEFAULT_MC_MODEL,
    *,
    max_iterations: int = 100,
) -> np.ndarray:
    """Effective ``bw(src -> dst)`` matrix under concurrent profiling load.

    Models the canonical tuner's profiling run (Section III-A3): the
    bandwidth-intensive reference benchmark runs on ``worker_nodes`` with
    pages uniformly interleaved across *all* nodes, and per-pair throughput
    is observed. Each pair's flow starts at its nominal (isolated)
    bandwidth; shared resources that end up overloaded scale all their
    flows down proportionally until everything fits.

    Returns an ``N x len(worker_nodes)``-shaped matrix restricted to the
    worker columns embedded in a full ``N x N`` array: entries for
    non-worker destinations are 0.
    """
    workers = list(worker_nodes)
    if not workers:
        raise ValueError("worker_nodes must not be empty")
    if len(set(workers)) != len(workers):
        raise ValueError(f"duplicate worker nodes: {workers}")
    n = machine.num_nodes
    for w in workers:
        if not 0 <= w < n:
            raise ValueError(f"worker node {w} outside machine")

    flows: List[Tuple[int, int]] = [(src, w) for w in workers for src in range(n)]
    rates = np.array([machine.nominal_bandwidth(s, d) for s, d in flows])

    def _waterfill(idx: List[int], coefs_: List[float], cap: float) -> None:
        """Equal-share (max-min) reduction: find the level t such that
        ``sum(min(rate, t) * coef) == cap`` and clip rates at t.

        Memory controllers arbitrate roughly fairly among requestors
        (FR-FCFS), so an overloaded controller equalises its flows instead
        of scaling them proportionally — this is what makes the profiled
        inter-worker bandwidths tend to uniformity as the worker set grows
        (the paper's Section IV-A observation).
        """
        pairs = sorted(zip((rates[m] for m in idx), coefs_, idx))
        remaining = cap
        coef_sum = sum(c for _, c, _ in pairs)
        level = None
        for r, c, _ in pairs:
            if r * coef_sum <= remaining:
                remaining -= r * c
                coef_sum -= c
            else:
                level = remaining / coef_sum
                break
        if level is not None:
            for m in idx:
                rates[m] = min(rates[m], level)

    # Resource membership and capacities (same resources as `solve`).
    res_caps: Dict[ResourceKey, float] = {}
    res_members: Dict[ResourceKey, List[int]] = {}
    res_coef: Dict[ResourceKey, List[float]] = {}
    readers: Dict[int, set] = {}
    for fi, (src, dst) in enumerate(flows):
        readers.setdefault(src, set()).add(dst)

    def add(key: ResourceKey, cap: float, fi: int, coef: float) -> None:
        res_caps[key] = cap
        res_members.setdefault(key, []).append(fi)
        res_coef.setdefault(key, []).append(coef)

    for fi, (src, dst) in enumerate(flows):
        peak = machine.node(src).local_bandwidth
        add(("mc", src), mc_model.effective_capacity(peak, len(readers[src])), fi, 1.0)
        if src != dst:
            route = machine.route(src, dst)
            overhead = 1.0 / (machine.hop_efficiency ** max(0, route.hops - 1))
            for link in route.links:
                add(("link", link.src, link.dst), link.capacity, fi, overhead)
            ingress = machine.ingress_capacity(dst)
            if np.isfinite(ingress):
                add(("ingress", dst), ingress, fi, 1.0)

    # Dense resource x flow coefficient matrix: the overload scan each
    # iteration is then two matrix ops instead of a per-flow Python loop.
    res_keys: List[ResourceKey] = list(res_caps)
    B = np.zeros((len(res_keys), len(flows)))
    for ri, key in enumerate(res_keys):
        B[ri, res_members[key]] = res_coef[key]
    cap_vec = np.array([res_caps[k] for k in res_keys])
    member_idx = {k: np.asarray(res_members[k]) for k in res_keys}

    for _ in range(max_iterations):
        loads = B @ rates
        with np.errstate(divide="ignore", invalid="ignore"):
            factors = np.where(loads > 0, cap_vec / loads, np.inf)
        overloaded = loads > cap_vec * (1 + _EPS)
        if not overloaded.any():
            break
        worst = int(np.argmin(np.where(overloaded, factors, np.inf)))
        worst_key = res_keys[worst]
        if worst_key[0] == "mc":
            # Controllers arbitrate fairly among requestors: equal-share.
            _waterfill(res_members[worst_key], res_coef[worst_key], res_caps[worst_key])
        else:
            # Links and ingress ports throttle in-flight traffic
            # proportionally, preserving path asymmetry.
            rates[member_idx[worst_key]] *= factors[worst]

    out = np.zeros((n, n))
    for (src, dst), rate in zip(flows, rates):
        out[src, dst] = rate
    return out


def isolated_bandwidth_matrix(machine: Machine) -> np.ndarray:
    """Pair-at-a-time profiled bandwidth matrix (no concurrent load).

    This is what a pairwise streaming microbenchmark measures and is how we
    regenerate Fig. 1a; it equals the machine's nominal matrix because a
    single flow meets no contention.
    """
    return machine.nominal_bandwidth_matrix()
