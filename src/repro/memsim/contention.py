"""Steady-state bandwidth allocation under contention and congestion.

This module computes what the real memory system does implicitly: given the
traffic every worker node generates (its demand and source mix), determine
the rate each worker actually achieves once memory-controller contention,
link congestion, and ingress-port limits are accounted for. The paper's
Section III-A3 lists exactly these phenomena as the reason the
``bw(src -> dst)`` function is demand-dependent.

Two allocation disciplines are provided:

* :func:`solve` — max-min fair **progressive filling** across consumers,
  used to model steady-state application execution: all consumers' rates
  rise together until a resource saturates, which freezes the consumers
  crossing it; the remainder keep growing.
* :func:`proportional_profile` — **proportional throttling** of independent
  per-pair flows, used to model the canonical tuner's profiling benchmark:
  with deep memory-level parallelism each source channel runs at its own
  capability, and when a shared resource saturates all of its flows scale
  down proportionally. This preserves the relative asymmetry between pairs,
  which is the signal the canonical tuner needs.

The progressive-filling solver is array-native: every solve runs over a
dense ``(batch, resources, consumers)`` tensor with a *canonical* resource
axis fixed per machine (see :class:`MachineTables`), so :func:`solve_batch`
can evaluate many candidate consumer sets in one vectorised pass. The
scalar :func:`solve` is the batch of one, which makes the scalar and
batched paths bitwise-identical by construction.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.memsim.controller import DEFAULT_MC_MODEL, MCModel
from repro.memsim.flows import Consumer
from repro.topology.machine import Machine

#: Numerical slack used when deciding resource saturation.
_EPS = 1e-9

#: Resource keys are ('mc', node), ('link', src, dst), or ('ingress', node).
ResourceKey = Tuple


@dataclass
class Allocation:
    """Result of a contention solve.

    Attributes
    ----------
    rates:
        Achieved aggregate rate (GB/s) per consumer, keyed by
        ``(app_id, node)``.
    utilization:
        Load / capacity per resource (see module docs for key format).
    bottleneck:
        For each consumer, the resource that froze its growth (None when
        the consumer was satisfied by its own demand cap).
    capacities:
        Effective capacity per resource used by this solve (after MC
        de-rating).
    """

    rates: Dict[Tuple[str, int], float]
    utilization: Dict[ResourceKey, float]
    bottleneck: Dict[Tuple[str, int], Optional[ResourceKey]]
    capacities: Dict[ResourceKey, float]
    #: Lazily-built per-app grouping of ``rates`` (and its totals); the
    #: simulator's telemetry loop asks for every app every epoch, which
    #: would otherwise rescan the machine-wide dict once per app.
    _app_groups: Optional[Dict[str, Dict[int, float]]] = field(
        default=None, init=False, repr=False, compare=False
    )
    _app_totals: Optional[Dict[str, float]] = field(
        default=None, init=False, repr=False, compare=False
    )

    def rate(self, app_id: str, node: int) -> float:
        """Achieved rate of one consumer."""
        return self.rates[(app_id, node)]

    def _grouped(self) -> Dict[str, Dict[int, float]]:
        if self._app_groups is None:
            groups: Dict[str, Dict[int, float]] = {}
            for (aid, node), r in self.rates.items():
                groups.setdefault(aid, {})[node] = r
            self._app_groups = groups
            self._app_totals = {
                aid: sum(by_node.values()) for aid, by_node in groups.items()
            }
        return self._app_groups

    def app_rates(self, app_id: str) -> Dict[int, float]:
        """Per-worker-node rates of one application."""
        return dict(self._grouped().get(app_id, {}))

    def app_total_rate(self, app_id: str) -> float:
        """Aggregate achieved rate of one application across its workers."""
        self._grouped()
        assert self._app_totals is not None
        return self._app_totals.get(app_id, 0.0)

    def resource_utilization(self, key: ResourceKey) -> float:
        """Utilization of one resource (0 when unused)."""
        return self.utilization.get(key, 0.0)


def consumers_fingerprint(
    consumers: Sequence[Consumer], mc_model: MCModel = DEFAULT_MC_MODEL
) -> Hashable:
    """Exact, hashable identity of a contention-solve input.

    Two inputs with equal fingerprints produce bitwise-identical
    :class:`Allocation` results from :func:`solve` (the machine is assumed
    fixed — cache per machine). Every quantity `solve` reads is folded in:
    the consumer identities, demands, write fractions, and the raw bytes of
    each mix vector, plus the MC model parameters.
    """
    return (
        mc_model.efficiency_floor,
        mc_model.contention_decay,
        mc_model.write_cost_factor,
        tuple(
            (
                c.app_id,
                c.node,
                c.demand,
                c.write_fraction,
                np.ascontiguousarray(c.mix, dtype=float).tobytes(),
            )
            for c in consumers
        ),
    )


class SolverCache:
    """LRU cache of :func:`solve` results keyed by input fingerprint.

    The simulator's inner loop re-solves the machine-wide allocation every
    epoch, but between placement changes (DWP steps, policy migrations, app
    arrival/finish) the consumer set is bit-for-bit identical — the solve
    is pure, so its previous :class:`Allocation` can be replayed. A small
    LRU (rather than a single slot) also captures tuner probe phases that
    alternate between a handful of placements.
    """

    def __init__(self, maxsize: int = 128):
        if maxsize < 1:
            raise ValueError(f"maxsize must be positive, got {maxsize}")
        self.maxsize = maxsize
        self._entries: "OrderedDict[Hashable, object]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def lookup(self, key: Hashable):
        """Cached value for ``key`` (None on a miss; statistics updated).

        Generic companion to :meth:`solve_keyed` for callers that cache
        something richer than a bare :class:`Allocation` — the simulator's
        epoch kernel stores ``(allocation, rate-row, utilization-row)``
        tuples so fingerprint-identical epochs replay the dense arrays too.
        One cache instance must only ever hold one kind of value.
        """
        hit = self._entries.get(key)
        if hit is not None:
            self.hits += 1
            self._entries.move_to_end(key)
            return hit
        self.misses += 1
        return None

    def store(self, key: Hashable, value) -> None:
        """Insert ``value`` under ``key``, evicting the LRU entry past
        ``maxsize``. Pairs with :meth:`lookup` (which already counted the
        miss that led here). Re-storing an existing key refreshes its
        recency — dict assignment alone keeps the old insertion order, and
        a freshly overwritten entry must not remain first in line for
        eviction."""
        self._entries[key] = value
        self._entries.move_to_end(key)
        if len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def clear(self) -> None:
        """Drop all entries (statistics are kept)."""
        self._entries.clear()

    def solve(
        self,
        machine: Machine,
        consumers: Sequence[Consumer],
        mc_model: MCModel = DEFAULT_MC_MODEL,
        *,
        capacity_scale: Optional[np.ndarray] = None,
    ) -> Allocation:
        """Like :func:`solve`, but replaying a cached result when possible.

        One cache instance must only ever see one machine: the fingerprint
        deliberately excludes the (immutable, identity-stable) machine.
        """
        key: Hashable = consumers_fingerprint(consumers, mc_model)
        if capacity_scale is not None:
            key = (key, np.ascontiguousarray(capacity_scale, dtype=float).tobytes())
        return self.solve_keyed(
            key, machine, consumers, mc_model, capacity_scale=capacity_scale
        )

    def solve_keyed(
        self,
        key: Hashable,
        machine: Machine,
        consumers: Sequence[Consumer],
        mc_model: MCModel = DEFAULT_MC_MODEL,
        *,
        capacity_scale: Optional[np.ndarray] = None,
    ) -> Allocation:
        """Like :meth:`solve` with a precomputed fingerprint.

        For callers (the simulator) that also key their own derived caches
        on the fingerprint and must not pay for computing it twice. When
        ``capacity_scale`` is given the caller's key must already encode it
        (the simulator folds the fault injector's scale key in).
        """
        hit = self.lookup(key)
        if hit is not None:
            return hit
        alloc = solve(machine, consumers, mc_model, capacity_scale=capacity_scale)
        self.store(key, alloc)
        return alloc


def _pair_link_table(
    machine: Machine,
) -> Dict[Tuple[int, int], Tuple[Tuple[ResourceKey, float, float], ...]]:
    """Per-machine table of link resources on every remote (src, dst) pair.

    Each entry is ``(link_key, per-unit coefficient, capacity)`` with the
    multi-hop forwarding overhead folded into the coefficient. Machines are
    immutable, so the table is computed once and memoised on the machine —
    the contention solver runs every simulated epoch and must not re-walk
    routes each time.
    """
    cache = getattr(machine, "_contention_pair_links", None)
    if cache is None:
        cache = {}
        for src in range(machine.num_nodes):
            for dst in range(machine.num_nodes):
                if src == dst:
                    continue
                route = machine.route(src, dst)
                overhead = 1.0 / (machine.hop_efficiency ** max(0, route.hops - 1))
                cache[(src, dst)] = tuple(
                    (("link", link.src, link.dst), overhead, link.capacity)
                    for link in route.links
                )
        machine._contention_pair_links = cache  # type: ignore[attr-defined]
    return cache


class MachineTables:
    """Canonical array-native view of one machine's contended resources.

    The batched solver works on dense ``(batch, resources, consumers)``
    arrays. For scalar/batch bitwise equivalence the resource axis must be
    identical for *every* solve on a machine — resources a particular
    consumer set never touches keep an infinite capacity and a cleared
    ``touched`` flag instead of being dropped from the axis. Rows are
    sorted by resource key, which makes per-row scans (bottleneck
    attribution, the tightest-resource fallback) visit resources in the
    same order the dict-era solver did.

    Attributes
    ----------
    res_keys / res_index:
        The sorted canonical resource axis and its inverse mapping.
    mc_rows / ingress_rows:
        Row index of each node's memory controller / ingress port
        (``ingress_rows[w] == -1`` when ingress limiting is disabled).
    static_caps:
        Per-row capacities that do not depend on the consumer set (links
        and ingress ports; MC rows are de-rated per solve).
    G_rest:
        ``(nodes, resources, nodes)`` per-unit-rate coefficients of a
        consumer resident on node ``w`` pulling from source ``s`` —
        everything except the MC share: route links (with multi-hop
        overhead folded in) and the ingress indicator.
    link_touch:
        Boolean version of the link part of ``G_rest`` (ingress excluded:
        an ingress port counts as touched whenever a live consumer resides
        on the node, independent of its mix, matching the dict-era
        capacity table).
    Q / lat0:
        Latency incidence used by the batched analytic evaluator:
        ``Q[w, s, r]`` counts how often resource ``r``'s queueing delay is
        added to a ``s -> w`` access, and ``lat0[w, s]`` is the unloaded
        latency of that access.
    """

    __slots__ = (
        "res_keys",
        "res_index",
        "num_nodes",
        "num_res",
        "mc_rows",
        "ingress_rows",
        "static_caps",
        "G_rest",
        "link_touch",
        "Q",
        "lat0",
        "local_bw",
        "_eff_tables",
    )

    def __init__(self, machine: Machine):
        num_nodes = machine.num_nodes
        has_ingress = [
            bool(np.isfinite(machine.ingress_capacity(w))) for w in range(num_nodes)
        ]
        keys: List[ResourceKey] = [("mc", s) for s in range(num_nodes)]
        keys.extend(("link", link.src, link.dst) for link in machine.links)
        keys.extend(("ingress", w) for w in range(num_nodes) if has_ingress[w])
        self.res_keys: List[ResourceKey] = sorted(keys)
        self.res_index: Dict[ResourceKey, int] = {
            k: i for i, k in enumerate(self.res_keys)
        }
        self.num_nodes = num_nodes
        self.num_res = len(self.res_keys)

        self.mc_rows = np.array(
            [self.res_index[("mc", s)] for s in range(num_nodes)], dtype=np.intp
        )
        self.ingress_rows = np.array(
            [
                self.res_index[("ingress", w)] if has_ingress[w] else -1
                for w in range(num_nodes)
            ],
            dtype=np.intp,
        )

        caps = np.zeros(self.num_res)
        for link in machine.links:
            caps[self.res_index[("link", link.src, link.dst)]] = link.capacity
        for w in range(num_nodes):
            if has_ingress[w]:
                caps[self.ingress_rows[w]] = machine.ingress_capacity(w)
        self.static_caps = caps

        pair_links = _pair_link_table(machine)
        G = np.zeros((num_nodes, self.num_res, num_nodes))
        Q = np.zeros((num_nodes, num_nodes, self.num_res))
        for w in range(num_nodes):
            for s in range(num_nodes):
                Q[w, s, self.mc_rows[s]] += 1.0
                if s == w:
                    continue
                for key_l, overhead, _cap in pair_links[(s, w)]:
                    ri = self.res_index[key_l]
                    G[w, ri, s] += overhead
                    Q[w, s, ri] += 1.0
                if has_ingress[w]:
                    G[w, self.ingress_rows[w], s] += 1.0
                    Q[w, s, self.ingress_rows[w]] += 1.0
        self.G_rest = G
        link_touch = G > 0.0
        for w in range(num_nodes):
            if has_ingress[w]:
                link_touch[w, self.ingress_rows[w], :] = False
        self.link_touch = link_touch

        self.Q = Q
        self.lat0 = np.array(
            [
                [machine.access_latency_ns(s, w) for s in range(num_nodes)]
                for w in range(num_nodes)
            ]
        )
        self.local_bw = np.array(
            [machine.node(s).local_bandwidth for s in range(num_nodes)]
        )
        self._eff_tables: Dict[Tuple[float, float, float], np.ndarray] = {}

    def eff_table(self, mc_model: MCModel) -> np.ndarray:
        """``(nodes, nodes + 1)`` de-rated MC capacity by reader count."""
        key = (
            mc_model.efficiency_floor,
            mc_model.contention_decay,
            mc_model.write_cost_factor,
        )
        table = self._eff_tables.get(key)
        if table is None:
            n = self.num_nodes
            table = np.empty((n, n + 1))
            for s in range(n):
                for k in range(n + 1):
                    table[s, k] = mc_model.effective_capacity(
                        float(self.local_bw[s]), k
                    )
            self._eff_tables[key] = table
        return table


def machine_tables(machine: Machine) -> MachineTables:
    """The memoised :class:`MachineTables` of an (immutable) machine."""
    tables = getattr(machine, "_contention_tables", None)
    if tables is None:
        tables = MachineTables(machine)
        machine._contention_tables = tables  # type: ignore[attr-defined]
    return tables


def latency_path_rows(machine: Machine) -> np.ndarray:
    """``(nodes, nodes, K)`` canonical resource rows of every ``s -> w`` path.

    ``latency_path_rows(m)[w, s]`` lists the rows (into
    :attr:`MachineTables.res_keys`) whose queueing delays
    :meth:`repro.perf.latency.LatencyModel.consumer_latency_ns` adds to an
    access from source ``s`` by a consumer on node ``w`` — the source MC,
    then the route's links in route order, then the destination ingress
    port (remote paths only; omitted when ingress limiting is disabled,
    where the scalar model reads an absent key as zero utilization).
    Entries are padded to a common length ``K`` with ``num_res``: callers
    gather from a per-row delay vector with a 0.0 appended, so each pad
    contributes an exact additive zero and the vectorised sum accumulates
    the same terms in the same order as the scalar model. Memoised on the
    (immutable) machine.
    """
    cached = getattr(machine, "_latency_path_rows", None)
    if cached is not None:
        return cached
    t = machine_tables(machine)
    pair_links = _pair_link_table(machine)
    paths: Dict[Tuple[int, int], List[int]] = {}
    kmax = 1
    for w in range(t.num_nodes):
        for s in range(t.num_nodes):
            rows = [int(t.mc_rows[s])]
            if s != w:
                rows.extend(t.res_index[key] for key, _ov, _cap in pair_links[(s, w)])
                if t.ingress_rows[w] >= 0:
                    rows.append(int(t.ingress_rows[w]))
            paths[(w, s)] = rows
            kmax = max(kmax, len(rows))
    out = np.full((t.num_nodes, t.num_nodes, kmax), t.num_res, dtype=np.intp)
    for (w, s), rows in paths.items():
        out[w, s, : len(rows)] = rows
    machine._latency_path_rows = out  # type: ignore[attr-defined]
    return out


def _axis_n_dot(A: np.ndarray, x: np.ndarray) -> np.ndarray:
    """``sum_j A[..., :, j] * x[..., j]`` accumulated sequentially over j.

    Equivalent to ``A @ x[..., None]`` but with a left-to-right accumulation
    order that is independent of the batch shape and exact under trailing
    zero padding: the operands are non-negative, so adding a zero term is a
    bitwise no-op. The scalar/batch equivalence guarantee rests on this —
    BLAS-style blocked reductions change results with the operand shape.
    """
    out = np.zeros(A.shape[:-1])
    for j in range(A.shape[-1]):
        out += A[..., j] * x[..., j, None]
    return out


class BatchArrays:
    """Raw array outputs of one batched progressive-filling solve.

    ``rates``/``bottleneck_row`` are indexed ``(batch, consumer-slot)``;
    ``load``/``caps``/``util``/``touched`` are ``(batch, resource-row)``
    over the canonical axis of ``tables.res_keys``. ``bottleneck_row`` is
    -1 for consumers frozen by their own demand cap (or never frozen).
    """

    __slots__ = ("tables", "rates", "load", "caps", "util", "touched", "bottleneck_row")

    def __init__(
        self,
        tables: MachineTables,
        rates: np.ndarray,
        load: np.ndarray,
        caps: np.ndarray,
        util: np.ndarray,
        touched: np.ndarray,
        bottleneck_row: np.ndarray,
    ):
        self.tables = tables
        self.rates = rates
        self.load = load
        self.caps = caps
        self.util = util
        self.touched = touched
        self.bottleneck_row = bottleneck_row


def batch_coefficients(
    machine: Machine,
    node_idx: np.ndarray,
    mix: np.ndarray,
    write_fraction: np.ndarray,
    mc_model: MCModel = DEFAULT_MC_MODEL,
) -> np.ndarray:
    """Per-unit-rate incidence matrix ``A[b, r, j]`` of a consumer batch.

    What one GB/s of consumer slot ``j`` costs at canonical resource row
    ``r``: the write-amplified MC share plus route-link overheads and the
    ingress indicator. ``A`` is independent of which slots are live — a
    dead slot's rate is pinned at zero, so its column never contributes —
    which lets callers that re-solve the same consumers under a shrinking
    live mask (the batched analytic evaluator) build it once and pass it to
    :func:`solve_batch_arrays` via ``coefficients``.
    """
    t = machine_tables(machine)
    num_batch, num_slots, _ = mix.shape
    write_scale = 1.0 + np.asarray(write_fraction, dtype=float) * (
        mc_model.write_cost_factor - 1.0
    )
    A = np.zeros((num_batch, t.num_res, num_slots))
    A[:, t.mc_rows, :] = np.swapaxes(mix * write_scale[:, :, None], 1, 2)
    # When every batch row has the same consumer-node layout (one search
    # scoring many mixes for one deployment), the per-batch coefficient
    # gather collapses to a single row — the einsum is elementwise over
    # the batch either way.
    if num_batch > 1 and (node_idx == node_idx[0]).all():
        A += np.einsum("jrk,bjk->brj", t.G_rest[node_idx[0]], mix)
    else:
        A += np.einsum("bjrk,bjk->brj", t.G_rest[node_idx], mix)
    return A


def candidate_rate_bound(
    machine: Machine,
    consumers: Sequence[Consumer],
    mc_model: MCModel = DEFAULT_MC_MODEL,
    *,
    capacity_scale: Optional[np.ndarray] = None,
) -> float:
    """Upper bound on ``sum(rates)`` of ``consumers`` under *any* co-runners.

    Soundness: progressive filling never lets a resource's load exceed its
    capacity by more than the saturation slack (``_EPS * max(cap, 1)``),
    and a consumer's rate never exceeds its demand. So for each consumer
    ``j`` with per-unit-rate coefficient ``coef[r]`` at resource ``r``
    (the same write-amplified MC share + route/ingress incidence
    :func:`batch_coefficients` builds),

        ``rate_j <= min(demand_j, min_{coef[r] > 0} slacked_cap[r] / coef[r])``

    where the capacities are the *unloaded* optimistic ones: static
    link/ingress capacities, and each MC at its best de-rating
    (``eff_table(...).max(axis=1)`` — fewest readers), scaled by
    ``capacity_scale`` when the machine is degraded. Co-runners only ever
    *shrink* the feasible region (they add load and extra MC readers), so
    the bound holds for every resident set — which is what lets the
    incremental fleet scheduler prune a candidate against an incumbent
    score without knowing the machine's residents.
    """
    t = machine_tables(machine)
    caps_ub = t.static_caps.copy()
    caps_ub[t.mc_rows] = t.eff_table(mc_model).max(axis=1)
    if capacity_scale is not None:
        scale = np.asarray(capacity_scale, dtype=float)
        if scale.shape != (t.num_res,):
            raise ValueError(
                f"capacity_scale must have shape ({t.num_res},), got {scale.shape}"
            )
        caps_ub = caps_ub * scale
    # Mirror the fill loop's saturation slack so float-rounding overshoot
    # can never push a true score above the bound.
    slacked = caps_ub + _EPS * np.maximum(caps_ub, 1.0)
    total = 0.0
    for c in consumers:
        mix = np.asarray(c.mix, dtype=float)
        write_scale = 1.0 + float(c.write_fraction) * (
            mc_model.write_cost_factor - 1.0
        )
        coef = np.zeros(t.num_res)
        coef[t.mc_rows] += mix * write_scale
        coef += t.G_rest[c.node] @ mix
        pos = coef > 0.0
        cap_j = float(np.min(slacked[pos] / coef[pos])) if pos.any() else float("inf")
        total += min(float(c.demand), cap_j)
    return total * (1.0 + 1e-9) + 1e-12


def _batch_setup(
    machine: Machine,
    node_idx: np.ndarray,
    mix: np.ndarray,
    demand: np.ndarray,
    write_fraction: np.ndarray,
    live: np.ndarray,
    mc_model: MCModel,
    coefficients: Optional[np.ndarray] = None,
    capacity_scale: Optional[np.ndarray] = None,
) -> Tuple[MachineTables, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Per-machine setup phase of a batched solve.

    Returns ``(tables, A, caps, touched, demand, live)`` — everything the
    machine-independent :func:`_progressive_fill` loop needs. Kept separate
    from the fill so :func:`solve_batch_fleet` can run this once per
    machine group, pad the outputs onto a fleet-wide axis, and fill the
    whole fleet in one pass.
    """
    t = machine_tables(machine)
    mix = np.asarray(mix, dtype=float)
    if mix.ndim != 3 or mix.shape[2] != t.num_nodes:
        raise ValueError(
            f"mix must be (batch, consumers, {t.num_nodes}), got {mix.shape}"
        )
    num_batch, num_slots, num_nodes = mix.shape
    num_res = t.num_res
    live = np.asarray(live, dtype=bool)
    node_idx = np.asarray(node_idx, dtype=np.intp)
    demand = np.asarray(demand, dtype=float)
    mix = np.where(live[:, :, None], mix, 0.0)

    A = coefficients
    if A is None:
        A = batch_coefficients(machine, node_idx, mix, write_fraction, mc_model)

    # Touched resources, replicating the dict-era capacity table exactly:
    # an MC or link is touched by any *live* consumer with a positive
    # coefficient on it (write scales and route overheads are >= 1, so
    # A > 0 is equivalent to a positive mix entry on the row's paths); an
    # ingress port by any live consumer *resident* on its node,
    # mix-independent.
    present = mix > 0.0
    touched = ((A > 0.0) & live[:, None, :]).any(axis=2)
    batch_range = np.arange(num_batch)
    ingress_of_slot = t.ingress_rows[node_idx]
    valid_ingress = t.ingress_rows[t.ingress_rows >= 0]
    if valid_ingress.size:
        touched[:, valid_ingress] = False
        for j in range(num_slots):
            ok = live[:, j] & (ingress_of_slot[:, j] >= 0)
            rows = np.where(ok, ingress_of_slot[:, j], 0)
            touched[batch_range, rows] |= ok

    # Effective capacities: links/ingress are static; MCs de-rate with the
    # number of distinct consumer nodes reading them; untouched rows are
    # unconstrained.
    node_present = np.zeros((num_batch, num_nodes, num_nodes), dtype=bool)
    for j in range(num_slots):
        node_present[batch_range, node_idx[:, j], :] |= present[:, j, :]
    reader_counts = node_present.sum(axis=1)
    caps = np.broadcast_to(t.static_caps, (num_batch, num_res)).copy()
    caps[:, t.mc_rows] = t.eff_table(mc_model)[
        np.arange(num_nodes)[None, :], reader_counts
    ]
    if capacity_scale is not None:
        scale = np.asarray(capacity_scale, dtype=float)
        if scale.shape != (num_res,):
            raise ValueError(
                f"capacity_scale must have shape ({num_res},), got {scale.shape}"
            )
        if (scale <= 0).any():
            raise ValueError("capacity_scale entries must be positive")
        caps = caps * scale
    caps = np.where(touched, caps, np.inf)
    return t, A, caps, touched, demand, live


def _progressive_fill(
    A: np.ndarray,
    caps: np.ndarray,
    touched: np.ndarray,
    demand: np.ndarray,
    live: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Machine-independent max-min progressive-filling loop.

    Operates purely on dense ``(batch, resources, consumers)`` tensors;
    batch elements are independent, and padded resource rows (zero
    incidence, infinite capacity, untouched) and dead consumer slots are
    exact no-ops — which is what lets heterogeneous machine groups share
    one fleet-wide tensor. Returns ``(rates, load, util, bottleneck_row)``.
    """
    num_batch, num_res, num_slots = A.shape
    saturation_slack = _EPS * np.maximum(caps, 1.0)
    batch_range = np.arange(num_batch)

    rates = np.zeros((num_batch, num_slots))
    active = live.copy()
    bottleneck_row = np.full((num_batch, num_slots), -1, dtype=np.intp)
    stopped = np.zeros(num_batch, dtype=bool)
    uses = A > _EPS

    load = _axis_n_dot(A, rates)
    for _ in range(num_res + num_slots + 1):
        alive = active.any(axis=1) & ~stopped
        if not alive.any():
            break
        growth = _axis_n_dot(A, active.astype(float))
        with np.errstate(divide="ignore", invalid="ignore"):
            room = np.where(growth > _EPS, (caps - load) / growth, np.inf)
        room = np.clip(room, 0.0, None)
        headroom = np.where(active, demand - rates, np.inf)
        delta = np.minimum(room.min(axis=1), headroom.min(axis=1))
        if (alive & ~np.isfinite(delta)).any():
            # Every active consumer is unbounded and touches no finite
            # resource — cannot happen on a real machine, but guard anyway.
            raise RuntimeError(
                "unbounded allocation: consumer touches no finite resource"
            )
        grow = active & alive[:, None]
        rates = np.where(grow, rates + delta[:, None], rates)

        load = _axis_n_dot(A, rates)
        saturated = ((caps - load) <= saturation_slack) & touched
        users = uses & saturated[:, :, None] & active[:, None, :]
        has_user = users.any(axis=1)
        # First saturated resource (in canonical row order) claims each
        # consumer's bottleneck attribution, once.
        first_row = users.argmax(axis=1)
        take = has_user & (bottleneck_row < 0) & alive[:, None]
        bottleneck_row = np.where(take, first_row, bottleneck_row)

        newly_frozen = has_user | (active & (rates >= demand - _EPS))
        newly_frozen &= alive[:, None]

        need_fallback = alive & ~newly_frozen.any(axis=1)
        if need_fallback.any():
            # Nothing froze: numerical corner; freeze the tightest
            # resource's users to guarantee progress, or stop the element
            # when even that resource has no active users.
            gaps = np.where(touched, caps - load, np.inf)
            tight = gaps.argmin(axis=1)
            tight_users = uses[batch_range, tight, :] & active
            any_tight = tight_users.any(axis=1)
            stopped |= need_fallback & ~any_tight
            freeze = need_fallback & any_tight
            newly_frozen |= tight_users & freeze[:, None]
        active &= ~newly_frozen

    with np.errstate(divide="ignore", invalid="ignore"):
        util = np.where(
            touched & (caps > 0), load / np.where(caps > 0, caps, 1.0), 0.0
        )
    return rates, load, util, bottleneck_row


def solve_batch_arrays(
    machine: Machine,
    node_idx: np.ndarray,
    mix: np.ndarray,
    demand: np.ndarray,
    write_fraction: np.ndarray,
    live: np.ndarray,
    mc_model: MCModel = DEFAULT_MC_MODEL,
    *,
    coefficients: Optional[np.ndarray] = None,
    capacity_scale: Optional[np.ndarray] = None,
) -> BatchArrays:
    """Vectorised max-min progressive filling over a batch of consumer sets.

    Inputs are dense arrays over ``(batch, consumer-slot)``: ``node_idx``
    holds each consumer's worker node, ``mix`` its per-source traffic
    fractions (``(batch, slot, nodes)``), ``demand``/``write_fraction`` per
    slot, and ``live`` the slot-validity mask — trailing padding and idle
    consumers are simply dead slots. Batch elements are independent; each
    element's results are bitwise-identical to solving it alone, because
    reductions over the consumer axis accumulate sequentially (dead-slot
    zeros are exact no-ops) and all other contractions run over fixed-size
    machine axes.

    ``capacity_scale`` is an optional per-resource multiplier over the
    canonical ``machine_tables(machine).res_keys`` axis (fault plans use
    it to degrade link capacities mid-run); ``None`` leaves the solve
    bit-for-bit unchanged.
    """
    t, A, caps, touched, demand, live = _batch_setup(
        machine,
        node_idx,
        mix,
        demand,
        write_fraction,
        live,
        mc_model,
        coefficients,
        capacity_scale,
    )
    rates, load, util, bottleneck_row = _progressive_fill(
        A, caps, touched, demand, live
    )
    return BatchArrays(t, rates, load, caps, util, touched, bottleneck_row)


def _empty_allocation(consumers: Sequence[Consumer]) -> Allocation:
    rates = {c.key(): 0.0 for c in consumers}
    bottleneck: Dict[Tuple[str, int], Optional[ResourceKey]] = {
        c.key(): None for c in consumers
    }
    return Allocation(
        rates=rates, utilization={}, bottleneck=bottleneck, capacities={}
    )


def _allocation_from_rows(
    consumers: Sequence[Consumer],
    live: Sequence[Consumer],
    res_keys: Sequence[ResourceKey],
    rates_row: np.ndarray,
    bottleneck_row: np.ndarray,
    touched_row: np.ndarray,
    util_row: np.ndarray,
    caps_row: np.ndarray,
) -> Allocation:
    """Unpack one batch element's dense rows into an :class:`Allocation`.

    ``touched_row`` may be longer than ``res_keys`` (fleet tensors pad the
    resource axis); padded rows are never touched, so the scan stays within
    the machine's own canonical axis.
    """
    rates: Dict[Tuple[str, int], float] = {c.key(): 0.0 for c in consumers}
    bottleneck: Dict[Tuple[str, int], Optional[ResourceKey]] = {
        c.key(): None for c in consumers
    }
    for j, c in enumerate(live):
        rates[c.key()] = float(rates_row[j])
        row = int(bottleneck_row[j])
        if row >= 0:
            bottleneck[c.key()] = res_keys[row]
    touched_rows = np.nonzero(touched_row)[0]
    utilization = {res_keys[i]: float(util_row[i]) for i in touched_rows}
    capacities = {res_keys[i]: float(caps_row[i]) for i in touched_rows}
    return Allocation(
        rates=rates,
        utilization=utilization,
        bottleneck=bottleneck,
        capacities=capacities,
    )


def _allocation_from_batch(
    consumers: Sequence[Consumer],
    live: Sequence[Consumer],
    arrays: BatchArrays,
    b: int,
) -> Allocation:
    return _allocation_from_rows(
        consumers,
        live,
        arrays.tables.res_keys,
        arrays.rates[b],
        arrays.bottleneck_row[b],
        arrays.touched[b],
        arrays.util[b],
        arrays.caps[b],
    )


def _live_consumers(machine: Machine, consumers: Sequence[Consumer]) -> List[Consumer]:
    """Validated non-idle consumers of one solve input."""
    num_nodes = machine.num_nodes
    lv = [c for c in consumers if not c.is_idle]
    keys = [c.key() for c in lv]
    if len(set(keys)) != len(keys):
        raise ValueError(f"duplicate consumer keys: {sorted(keys)}")
    for c in lv:
        if not 0 <= c.node < num_nodes:
            raise ValueError(f"consumer node {c.node} outside machine")
        if len(c.mix) > num_nodes:
            raise ValueError(
                f"mix has {len(c.mix)} entries for a {num_nodes}-node machine"
            )
    return lv


def _pack_consumers(
    lives: Sequence[Sequence[Consumer]], num_nodes: int, num_slots: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Pack validated consumer lists into dense padded slot arrays."""
    num_batch = len(lives)
    node_idx = np.zeros((num_batch, num_slots), dtype=np.intp)
    mix = np.zeros((num_batch, num_slots, num_nodes))
    demand = np.zeros((num_batch, num_slots))
    write_frac = np.zeros((num_batch, num_slots))
    live_mask = np.zeros((num_batch, num_slots), dtype=bool)
    for b, lv in enumerate(lives):
        for j, c in enumerate(lv):
            node_idx[b, j] = c.node
            m = np.asarray(c.mix, dtype=float)
            mix[b, j, : len(m)] = m
            demand[b, j] = c.demand
            write_frac[b, j] = c.write_fraction
            live_mask[b, j] = True
    return node_idx, mix, demand, write_frac, live_mask


def solve_batch(
    machine: Machine,
    consumer_batches: Iterable[Sequence[Consumer]],
    mc_model: MCModel = DEFAULT_MC_MODEL,
    *,
    capacity_scale: Optional[np.ndarray] = None,
) -> List[Allocation]:
    """Solve many independent consumer sets in one vectorised pass.

    Returns one :class:`Allocation` per input set, each bitwise-identical
    to what :func:`solve` produces for that set alone — :func:`solve` *is*
    the batch of one. Use this to score candidate placements (the oracle
    search's neighbour sets, DWP probe curves, sweep grids) without paying
    per-candidate solver setup.
    """
    batches = [list(cs) for cs in consumer_batches]
    if not batches:
        return []
    lives = [_live_consumers(machine, cs) for cs in batches]
    max_live = max(len(lv) for lv in lives)
    if max_live == 0:
        return [_empty_allocation(cs) for cs in batches]

    num_batch = len(batches)
    node_idx, mix, demand, write_frac, live_mask = _pack_consumers(
        lives, machine.num_nodes, max_live
    )
    arrays = solve_batch_arrays(
        machine,
        node_idx,
        mix,
        demand,
        write_frac,
        live_mask,
        mc_model,
        capacity_scale=capacity_scale,
    )
    return [
        _allocation_from_batch(batches[b], lives[b], arrays, b)
        for b in range(num_batch)
    ]


class FleetBatch:
    """Lazy view over one fleet-batched solve.

    :meth:`allocation` materialises one entry into a full
    :class:`Allocation` (memoised); :meth:`app_total_rate` reads an
    application's aggregate rate straight off the dense rate tensor.
    Both are bitwise-identical to ``solve(machine, consumers)`` run on
    that entry alone, so a caller that only needs scores for most
    entries (the fleet scheduler: thousands of candidates, a handful of
    winners) skips the per-entry dict construction entirely.
    """

    __slots__ = (
        "_pairs",
        "_lives",
        "_tables",
        "_rates",
        "_util",
        "_bottleneck",
        "_touched",
        "_caps",
        "_allocs",
    )

    def __init__(self, pairs, lives, tables, rates, util, bottleneck, touched, caps):
        self._pairs = pairs
        self._lives = lives
        self._tables = tables
        self._rates = rates
        self._util = util
        self._bottleneck = bottleneck
        self._touched = touched
        self._caps = caps
        self._allocs: List[Optional[Allocation]] = [None] * len(pairs)

    def __len__(self) -> int:
        return len(self._allocs)

    def allocation(self, i: int) -> Allocation:
        """Full :class:`Allocation` of entry ``i`` (built on first use)."""
        alloc = self._allocs[i]
        if alloc is None:
            if self._rates is None:  # every entry in the batch was idle
                alloc = _empty_allocation(self._pairs[i][1])
            else:
                alloc = _allocation_from_rows(
                    self._pairs[i][1],
                    self._lives[i],
                    self._tables[i].res_keys,
                    self._rates[i],
                    self._bottleneck[i],
                    self._touched[i],
                    self._util[i],
                    self._caps[i],
                )
            self._allocs[i] = alloc
        return alloc

    def app_total_rate(self, i: int, app_id: str) -> float:
        """Aggregate rate of ``app_id`` in entry ``i``.

        Sums the app's live-consumer rates in consumer order — the same
        floats in the same order as
        ``allocation(i).app_total_rate(app_id)`` (idle consumers only
        ever contribute an exact ``+ 0.0``), so scores taken here and
        scores taken from materialised allocations are interchangeable.
        """
        if self._rates is None:
            return 0.0
        total = 0.0
        row = self._rates[i]
        for j, c in enumerate(self._lives[i]):
            if c.app_id == app_id:
                total += float(row[j])
        return total


def solve_batch_fleet_lazy(
    entries: Iterable[Tuple[Machine, Sequence[Consumer]]],
    mc_model: MCModel = DEFAULT_MC_MODEL,
    *,
    capacity_scales: Optional[Sequence[Optional[np.ndarray]]] = None,
) -> FleetBatch:
    """Solve consumer sets on *heterogeneous* machines in one filling pass.

    The fleet scheduler scores every (app x machine x worker-set) candidate
    placement per tick; this entry point takes ``(machine, consumers)``
    pairs spanning different topologies and returns a lazy
    :class:`FleetBatch`, each of whose entries is bitwise-identical to
    ``solve(machine, consumers)`` run alone. Entries are grouped by machine
    (the memoised :class:`MachineTables` identity — fleet machines of the
    same class should share one :class:`~repro.topology.machine.Machine`
    object), the per-group setup runs exactly as in :func:`solve_batch`,
    and the groups are padded onto a fleet-wide
    ``(entries, resources, consumers)`` tensor: padded resource rows are
    untouched with infinite capacity and zero incidence and padded
    consumer slots are dead, so both are exact no-ops in
    :func:`_progressive_fill` and the stacking never perturbs a result.

    ``capacity_scales`` is an optional per-*entry* counterpart of
    :func:`solve`'s ``capacity_scale``: one ``(num_res,)`` multiplier
    array (or ``None``) per entry over that entry's own canonical
    resource axis — the fleet scheduler degrades individual machines'
    links mid-run with it. A scaled entry is bitwise-identical to
    ``solve(machine, consumers, capacity_scale=scale)`` run alone: the
    multiply commutes with the untouched-row infinity masking (padded and
    untouched rows are ``inf`` and stay ``inf`` under a positive scale),
    and unscaled entries are never multiplied at all.
    """
    pairs = [(m, list(cs)) for m, cs in entries]
    lives = [_live_consumers(m, cs) for m, cs in pairs]
    if capacity_scales is not None and len(capacity_scales) != len(pairs):
        raise ValueError(
            f"capacity_scales has {len(capacity_scales)} entries "
            f"for {len(pairs)} solve entries"
        )
    if not pairs or max(len(lv) for lv in lives) == 0:
        return FleetBatch(pairs, lives, None, None, None, None, None, None)
    max_live = max(len(lv) for lv in lives)

    tables = [machine_tables(m) for m, _ in pairs]
    groups: "OrderedDict[int, List[int]]" = OrderedDict()
    for i, t in enumerate(tables):
        groups.setdefault(id(t), []).append(i)

    num_batch = len(pairs)
    max_res = max(t.num_res for t in tables)
    A_all = np.zeros((num_batch, max_res, max_live))
    caps_all = np.full((num_batch, max_res), np.inf)
    touched_all = np.zeros((num_batch, max_res), dtype=bool)
    demand_all = np.zeros((num_batch, max_live))
    live_all = np.zeros((num_batch, max_live), dtype=bool)
    for idxs in groups.values():
        machine = pairs[idxs[0]][0]
        node_idx, mix, demand, write_frac, live_mask = _pack_consumers(
            [lives[i] for i in idxs], machine.num_nodes, max_live
        )
        t, A, caps, touched, demand, live_mask = _batch_setup(
            machine, node_idx, mix, demand, write_frac, live_mask, mc_model
        )
        rows = np.asarray(idxs, dtype=np.intp)
        A_all[rows, : t.num_res, :] = A
        caps_all[rows, : t.num_res] = caps
        touched_all[rows, : t.num_res] = touched
        demand_all[rows] = demand
        live_all[rows] = live_mask

    if capacity_scales is not None:
        for i, scale in enumerate(capacity_scales):
            if scale is None:
                continue
            num_res = tables[i].num_res
            scale = np.asarray(scale, dtype=float)
            if scale.shape != (num_res,):
                raise ValueError(
                    f"capacity_scales[{i}] must have shape ({num_res},), "
                    f"got {scale.shape}"
                )
            if (scale <= 0).any():
                raise ValueError(f"capacity_scales[{i}] entries must be positive")
            caps_all[i, :num_res] *= scale

    rates, _load, util, bottleneck_row = _progressive_fill(
        A_all, caps_all, touched_all, demand_all, live_all
    )
    return FleetBatch(
        pairs, lives, tables, rates, util, bottleneck_row, touched_all, caps_all
    )


def solve_batch_fleet(
    entries: Iterable[Tuple[Machine, Sequence[Consumer]]],
    mc_model: MCModel = DEFAULT_MC_MODEL,
    *,
    capacity_scales: Optional[Sequence[Optional[np.ndarray]]] = None,
) -> List[Allocation]:
    """Eager form of :func:`solve_batch_fleet_lazy`: one
    :class:`Allocation` per ``(machine, consumers)`` pair."""
    batch = solve_batch_fleet_lazy(entries, mc_model, capacity_scales=capacity_scales)
    return [batch.allocation(i) for i in range(len(batch))]


def solve(
    machine: Machine,
    consumers: Sequence[Consumer],
    mc_model: MCModel = DEFAULT_MC_MODEL,
    *,
    capacity_scale: Optional[np.ndarray] = None,
) -> Allocation:
    """Max-min fair progressive filling across consumers.

    All non-idle consumers' rates grow at the same pace. When a resource
    saturates, every consumer with positive share in it freezes; when a
    consumer reaches its demand cap it freezes satisfied. Terminates after
    at most ``len(resources) + len(consumers)`` rounds.
    """
    return solve_batch(machine, [consumers], mc_model, capacity_scale=capacity_scale)[0]


def proportional_profile(
    machine: Machine,
    worker_nodes: Sequence[int],
    mc_model: MCModel = DEFAULT_MC_MODEL,
    *,
    max_iterations: int = 100,
) -> np.ndarray:
    """Effective ``bw(src -> dst)`` matrix under concurrent profiling load.

    Models the canonical tuner's profiling run (Section III-A3): the
    bandwidth-intensive reference benchmark runs on ``worker_nodes`` with
    pages uniformly interleaved across *all* nodes, and per-pair throughput
    is observed. Each pair's flow starts at its nominal (isolated)
    bandwidth; shared resources that end up overloaded scale all their
    flows down proportionally until everything fits.

    Returns an ``N x len(worker_nodes)``-shaped matrix restricted to the
    worker columns embedded in a full ``N x N`` array: entries for
    non-worker destinations are 0.
    """
    workers = list(worker_nodes)
    if not workers:
        raise ValueError("worker_nodes must not be empty")
    if len(set(workers)) != len(workers):
        raise ValueError(f"duplicate worker nodes: {workers}")
    n = machine.num_nodes
    for w in workers:
        if not 0 <= w < n:
            raise ValueError(f"worker node {w} outside machine")

    flows: List[Tuple[int, int]] = [(src, w) for w in workers for src in range(n)]
    rates = np.array([machine.nominal_bandwidth(s, d) for s, d in flows])

    def _waterfill(idx: List[int], coefs_: List[float], cap: float) -> None:
        """Equal-share (max-min) reduction: find the level t such that
        ``sum(min(rate, t) * coef) == cap`` and clip rates at t.

        Memory controllers arbitrate roughly fairly among requestors
        (FR-FCFS), so an overloaded controller equalises its flows instead
        of scaling them proportionally — this is what makes the profiled
        inter-worker bandwidths tend to uniformity as the worker set grows
        (the paper's Section IV-A observation).
        """
        pairs = sorted(zip((rates[m] for m in idx), coefs_, idx))
        remaining = cap
        coef_sum = sum(c for _, c, _ in pairs)
        level = None
        for r, c, _ in pairs:
            if r * coef_sum <= remaining:
                remaining -= r * c
                coef_sum -= c
            else:
                level = remaining / coef_sum
                break
        if level is not None:
            for m in idx:
                rates[m] = min(rates[m], level)

    # Resource membership and capacities (same resources as `solve`).
    res_caps: Dict[ResourceKey, float] = {}
    res_members: Dict[ResourceKey, List[int]] = {}
    res_coef: Dict[ResourceKey, List[float]] = {}
    readers: Dict[int, set] = {}
    for fi, (src, dst) in enumerate(flows):
        readers.setdefault(src, set()).add(dst)

    def add(key: ResourceKey, cap: float, fi: int, coef: float) -> None:
        res_caps[key] = cap
        res_members.setdefault(key, []).append(fi)
        res_coef.setdefault(key, []).append(coef)

    for fi, (src, dst) in enumerate(flows):
        peak = machine.node(src).local_bandwidth
        add(("mc", src), mc_model.effective_capacity(peak, len(readers[src])), fi, 1.0)
        if src != dst:
            route = machine.route(src, dst)
            overhead = 1.0 / (machine.hop_efficiency ** max(0, route.hops - 1))
            for link in route.links:
                add(("link", link.src, link.dst), link.capacity, fi, overhead)
            ingress = machine.ingress_capacity(dst)
            if np.isfinite(ingress):
                add(("ingress", dst), ingress, fi, 1.0)

    # Dense resource x flow coefficient matrix: the overload scan each
    # iteration is then two matrix ops instead of a per-flow Python loop.
    res_keys: List[ResourceKey] = list(res_caps)
    B = np.zeros((len(res_keys), len(flows)))
    for ri, key in enumerate(res_keys):
        B[ri, res_members[key]] = res_coef[key]
    cap_vec = np.array([res_caps[k] for k in res_keys])
    member_idx = {k: np.asarray(res_members[k]) for k in res_keys}

    for _ in range(max_iterations):
        loads = B @ rates
        with np.errstate(divide="ignore", invalid="ignore"):
            factors = np.where(loads > 0, cap_vec / loads, np.inf)
        overloaded = loads > cap_vec * (1 + _EPS)
        if not overloaded.any():
            break
        worst = int(np.argmin(np.where(overloaded, factors, np.inf)))
        worst_key = res_keys[worst]
        if worst_key[0] == "mc":
            # Controllers arbitrate fairly among requestors: equal-share.
            _waterfill(res_members[worst_key], res_coef[worst_key], res_caps[worst_key])
        else:
            # Links and ingress ports throttle in-flight traffic
            # proportionally, preserving path asymmetry.
            rates[member_idx[worst_key]] *= factors[worst]

    out = np.zeros((n, n))
    for (src, dst), rate in zip(flows, rates):
        out[src, dst] = rate
    return out


def isolated_bandwidth_matrix(machine: Machine) -> np.ndarray:
    """Pair-at-a-time profiled bandwidth matrix (no concurrent load).

    This is what a pairwise streaming microbenchmark measures and is how we
    regenerate Fig. 1a; it equals the machine's nominal matrix because a
    single flow meets no contention.
    """
    return machine.nominal_bandwidth_matrix()
