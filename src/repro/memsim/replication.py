"""Carrefour-style read-only page replication (paper Section V).

Carrefour [21] complements its interleaving with two optimisations the
paper could not evaluate (they need kernel patches): co-location of private
pages and *replication of read-only shared pages* on every node that reads
them. The paper argues these are orthogonal to BWAP; this module implements
the replication policy so the combination can actually be measured.

Replication semantics in the model: each worker node holds a full replica
of the shared segments, so shared *reads* are served locally; private pages
are placed on their owner's node (Carrefour's co-location). Replication is
only sound for read-mostly data — a write would have to invalidate every
replica — so the policy refuses workloads whose write share exceeds a
threshold, mirroring Carrefour's read-only detection.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.memsim.pages import AddressSpace, SegmentKind
from repro.memsim.policies import PlacementContext, PlacementPolicy, PlacementStats

#: Write share above which replication is refused (Carrefour replicates
#: pages it observed as read-only; we allow a small slack for the model).
DEFAULT_MAX_WRITE_FRACTION: float = 0.05


class ReplicatedShared(PlacementPolicy):
    """Replicate shared pages on every worker; co-locate private pages.

    The page table stores the *primary* copy's location (the first worker
    node); the simulator recognises the ``replicates_shared`` attribute and
    serves each worker's shared reads from its local replica. Memory
    footprint grows by ``(num_workers - 1) x shared_bytes`` — call
    :meth:`memory_overhead_bytes` to check capacity.
    """

    name = "replicated-shared"

    #: Engine flag: shared reads are served from the reader's local node.
    replicates_shared = True

    def __init__(self, max_write_fraction: float = DEFAULT_MAX_WRITE_FRACTION):
        if not 0 <= max_write_fraction < 1:
            raise ValueError(
                f"max_write_fraction must be in [0, 1), got {max_write_fraction}"
            )
        self.max_write_fraction = max_write_fraction

    def validate_workload(self, write_fraction: float) -> None:
        """Refuse write-heavy workloads, like Carrefour's read-only filter."""
        if write_fraction > self.max_write_fraction:
            raise ValueError(
                f"replication requires read-mostly data: write fraction "
                f"{write_fraction:.2f} exceeds {self.max_write_fraction:.2f}"
            )

    def place(self, space: AddressSpace, ctx: PlacementContext) -> PlacementStats:
        touched = 0
        for seg in space.segments:
            if seg.kind is SegmentKind.PRIVATE:
                touched += space.touch(seg, ctx.node_of_thread(seg.owner_thread))
            else:
                # Primary copy on the first worker; replicas are implicit
                # (the engine serves reads locally via replicates_shared).
                touched += space.touch(seg, ctx.worker_nodes[0])
        return PlacementStats(pages_touched=touched)

    @staticmethod
    def memory_overhead_bytes(space: AddressSpace, ctx: PlacementContext) -> int:
        """Extra DRAM consumed by the replicas."""
        shared = space.segments_of_kind(SegmentKind.SHARED)
        shared_bytes = sum(s.size_bytes for s in shared)
        return shared_bytes * (len(ctx.worker_nodes) - 1)
