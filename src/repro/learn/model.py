"""A small, dependency-free learned DWP predictor.

Ridge regression over standardised features (optionally with squared
terms for mild non-linearity), solved in closed form with numpy — no new
dependencies, bit-deterministic given the same dataset. The fitted model
serialises to a versioned ``.npz`` checkpoint (written with the same
deterministic writer as datasets) that is committed under ``models/`` so
experiments and CI never retrain unless asked to.

:class:`WarmStartPredictor` wraps a fitted model into the object the
tuners accept as ``warm_start=``: it featurises a deployment through the
same profiling path the dataset builder used, predicts the optimal DWP,
and *floor-snaps* the prediction to the climb's step grid minus a safety
backoff. The snap deliberately undershoots: the user-mode back end can
only narrow the distribution (raise DWP), so approaching the optimum
from below keeps the standard first-non-improvement stopping rule sound,
whereas overshooting would strand the climb above the optimum.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.learn.dataset import Dataset, write_npz
from repro.learn.features import FEATURE_NAMES, feature_vector
from repro.store import fingerprint
from repro.topology.machine import Machine

#: Version of the checkpoint layout; loading refuses a mismatch.
CHECKPOINT_VERSION = 1


@dataclass(frozen=True)
class RidgeModel:
    """A fitted ridge regressor: ``dwp ~ w . phi((x - mean) / scale)``.

    ``weights[0]`` is the bias; the remainder align with the standardised
    features, followed by the full degree-2 basis (squares and pairwise
    interactions) when ``quadratic``.
    """

    feature_names: Tuple[str, ...]
    mean: np.ndarray
    scale: np.ndarray
    weights: np.ndarray
    quadratic: bool
    l2: float

    def _design(self, X: np.ndarray) -> np.ndarray:
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        if X.shape[1] != len(self.feature_names):
            raise ValueError(
                f"feature width {X.shape[1]} != model schema {len(self.feature_names)}"
            )
        Z = (X - self.mean) / self.scale
        if self.quadratic:
            # Full degree-2 basis: squares and pairwise interactions of the
            # standardised features (e.g. demand:capacity x asymmetry).
            iu = np.triu_indices(Z.shape[1])
            Z = np.hstack([Z, Z[:, iu[0]] * Z[:, iu[1]]])
        return np.hstack([np.ones((Z.shape[0], 1)), Z])

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predicted DWP per row, clipped to the valid [0, 1] range."""
        return np.clip(self._design(X) @ self.weights, 0.0, 1.0)

    def save(self, path) -> None:
        """Write a byte-deterministic versioned checkpoint."""
        write_npz(
            path,
            {
                "version": np.array([CHECKPOINT_VERSION], dtype=np.int64),
                "feature_names": np.array(self.feature_names, dtype=np.str_),
                "mean": np.asarray(self.mean, dtype=np.float64),
                "scale": np.asarray(self.scale, dtype=np.float64),
                "weights": np.asarray(self.weights, dtype=np.float64),
                "quadratic": np.array([int(self.quadratic)], dtype=np.int64),
                "l2": np.array([float(self.l2)], dtype=np.float64),
            },
        )

    @classmethod
    def load(cls, path) -> "RidgeModel":
        with np.load(path, allow_pickle=False) as data:
            version = int(data["version"][0])
            if version != CHECKPOINT_VERSION:
                raise ValueError(
                    f"checkpoint version {version} != supported {CHECKPOINT_VERSION}"
                )
            return cls(
                feature_names=tuple(str(s) for s in data["feature_names"]),
                mean=np.array(data["mean"], dtype=np.float64),
                scale=np.array(data["scale"], dtype=np.float64),
                weights=np.array(data["weights"], dtype=np.float64),
                quadratic=bool(int(data["quadratic"][0])),
                l2=float(data["l2"][0]),
            )


def train_ridge(
    dataset: Dataset, *, l2: float = 0.1, quadratic: bool = True
) -> RidgeModel:
    """Fit a ridge model on a dataset (closed form, deterministic).

    The bias column is unregularised; every other coefficient shrinks by
    ``l2``. Constant features get unit scale (their standardised column
    is zero, so they contribute nothing rather than dividing by zero).
    """
    if l2 < 0:
        raise ValueError(f"l2 must be non-negative, got {l2}")
    X = np.asarray(dataset.X, dtype=np.float64)
    y = np.asarray(dataset.y, dtype=np.float64)
    if X.ndim != 2 or X.shape[0] != y.shape[0] or X.shape[0] == 0:
        raise ValueError(f"bad dataset shapes X{X.shape} y{y.shape}")
    mean = X.mean(axis=0)
    std = X.std(axis=0)
    scale = np.where(std > 0, std, 1.0)
    model = RidgeModel(
        feature_names=tuple(dataset.feature_names),
        mean=mean,
        scale=scale,
        weights=np.zeros(1),  # placeholder; replaced below
        quadratic=quadratic,
        l2=float(l2),
    )
    A = model._design(X)
    reg = np.eye(A.shape[1]) * l2
    reg[0, 0] = 0.0
    weights = np.linalg.solve(A.T @ A + reg, A.T @ y)
    return RidgeModel(
        feature_names=model.feature_names,
        mean=mean,
        scale=scale,
        weights=weights,
        quadratic=quadratic,
        l2=float(l2),
    )


def evaluate(model: RidgeModel, dataset: Dataset) -> Dict[str, float]:
    """Prediction-quality metrics of a model on a dataset."""
    pred = model.predict(dataset.X)
    err = np.abs(pred - dataset.y)
    return {
        "n": float(len(err)),
        "mae": float(err.mean()),
        "rmse": float(np.sqrt((err * err).mean())),
        "within_0_05": float((err <= 0.05).mean()),
        "within_0_10": float((err <= 0.10).mean()),
    }


def holdout_evaluate(
    dataset: Dataset,
    *,
    seed: int = 0,
    test_fraction: float = 0.25,
    l2: float = 0.1,
    quadratic: bool = True,
) -> Dict[str, float]:
    """Train on a seeded split, report metrics on the held-out rows."""
    if not 0 < test_fraction < 1:
        raise ValueError(f"test_fraction must be in (0, 1), got {test_fraction}")
    n = dataset.X.shape[0]
    n_test = max(1, int(round(n * test_fraction)))
    if n_test >= n:
        raise ValueError(f"dataset of {n} rows is too small for a holdout split")
    order = np.random.default_rng(seed).permutation(n)
    test, train = order[:n_test], order[n_test:]

    def subset(idx) -> Dataset:
        return Dataset(
            X=dataset.X[idx],
            y=dataset.y[idx],
            feature_names=dataset.feature_names,
            rows=tuple(dataset.rows[i] for i in idx),
        )

    model = train_ridge(subset(train), l2=l2, quadratic=quadratic)
    return evaluate(model, subset(test))


class WarmStartPredictor:
    """The ``warm_start=`` object: model + featurisation + snap policy.

    Parameters
    ----------
    model:
        A fitted :class:`RidgeModel` whose feature schema must match the
        current :data:`~repro.learn.features.FEATURE_NAMES`.
    step:
        The climb's DWP increment; predictions snap down onto this grid.
    backoff_steps:
        Extra steps of undershoot after the floor-snap (default 1): the
        climb then re-confirms the last increment itself, so a slightly
        optimistic prediction still converges from below.
    """

    def __init__(
        self, model: RidgeModel, *, step: float = 0.10, backoff_steps: int = 1
    ):
        if tuple(model.feature_names) != FEATURE_NAMES:
            raise ValueError(
                "model feature schema "
                f"{model.feature_names} != current {FEATURE_NAMES}; retrain"
            )
        if step <= 0:
            raise ValueError(f"step must be positive, got {step}")
        if backoff_steps < 0:
            raise ValueError(f"backoff_steps must be >= 0, got {backoff_steps}")
        self.model = model
        self.step = float(step)
        self.backoff_steps = int(backoff_steps)
        self._memo: Dict[str, float] = {}

    def raw_prediction(
        self,
        machine: Machine,
        workload,
        worker_nodes: Sequence[int],
        canonical: Optional[np.ndarray] = None,
    ) -> float:
        """The model's clipped prediction, before grid snapping."""
        x = feature_vector(machine, workload, worker_nodes, canonical)
        return float(self.model.predict(x)[0])

    def snap(self, dwp: float) -> float:
        """Floor onto the step grid, then back off ``backoff_steps``."""
        grid = math.floor(dwp / self.step + 1e-9) - self.backoff_steps
        return max(0.0, grid * self.step)

    def predict(
        self,
        machine: Machine,
        workload,
        worker_nodes: Sequence[int],
        canonical: Optional[np.ndarray] = None,
    ) -> float:
        """The warm-start DWP for one deployment (memoised).

        Featurisation runs a short profiling simulation, so repeated
        predictions for the same deployment (e.g. the adaptive tuner
        re-tuning) are served from a content-addressed memo.
        """
        key = fingerprint(
            "bwap.learn.predict", machine, workload, tuple(int(w) for w in worker_nodes)
        )
        if key not in self._memo:
            self._memo[key] = self.snap(
                self.raw_prediction(machine, workload, worker_nodes, canonical)
            )
        return self._memo[key]

    def predict_dwp(self, app, canonical: np.ndarray) -> float:
        """Tuner-facing hook (see :class:`repro.core.dwp.DWPTuner`)."""
        return self.predict(app.machine, app.workload, app.worker_nodes, canonical)


def load_predictor(path, *, step: float = 0.10, backoff_steps: int = 1) -> WarmStartPredictor:
    """Load a committed checkpoint into a ready predictor."""
    return WarmStartPredictor(
        RidgeModel.load(path), step=step, backoff_steps=backoff_steps
    )
