"""Training-data generation for learned DWP prediction.

Each row is one (machine, workload, worker-set) deployment:

* **features** — :func:`repro.learn.features.feature_vector` (counter
  features from a short profiling run ++ topology features);
* **label** — the oracle-best DWP from the batched analytic probe
  (:class:`repro.core.dwp.DWPProbeSession`): a coarse ladder over the
  whole [0, 1] range, then a fine refinement around the coarse argmin
  that re-enters the *same* session, so the refinement re-scores only the
  DWPs it has not already seen.

Every row is content-addressed through :mod:`repro.store` (same
discipline as :func:`repro.experiments.common.run_spec`): re-running a
dataset build after an interruption recomputes only the missing rows, and
a repeat build is served almost entirely from the store.

The on-disk dataset is a ``.npz`` written deterministically (fixed zip
timestamps, no compression), so the same rows always produce a
byte-identical file — the property the resumability test pins down.
"""

from __future__ import annotations

import dataclasses
import io
import zipfile
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.canonical import CanonicalTuner
from repro.core.dwp import DWPProbeSession
from repro.engine.threads import pick_worker_nodes
from repro.learn.features import FEATURE_NAMES, feature_vector
from repro.store import SCHEMA_VERSION, fingerprint, get_default_store
from repro.topology.builders import random_machine
from repro.topology.machine import Machine
from repro.workloads.generator import random_workload
from repro.workloads.suites import paper_benchmarks

#: Version of the on-disk dataset layout (bump on incompatible change).
DATASET_VERSION = 1

#: Default DWP ladder resolutions for the oracle label.
COARSE_STEP = 0.05
REFINE_STEP = 0.01

#: The paper's five stand-alone deployments (machine, worker nodes).
SUITE_DEPLOYMENTS: Tuple[Tuple[str, int], ...] = (
    ("A", 1),
    ("A", 2),
    ("A", 4),
    ("B", 1),
    ("B", 2),
)


@dataclass(frozen=True)
class RowSpec:
    """One dataset row, picklable so builds can fan out across processes.

    ``machine`` is the registry name (``"A"``/``"B"``) or a concrete
    :class:`Machine` (random topologies ship the object; its structural
    encoding — not its name — is what the row fingerprint keys on).
    """

    machine: Union[str, Machine]
    workload: object  # WorkloadSpec; typed loosely to avoid import cycle
    num_workers: int
    coarse_step: float = COARSE_STEP
    refine_step: float = REFINE_STEP

    def resolve_machine(self) -> Machine:
        if isinstance(self.machine, str):
            from repro.experiments.common import get_machine

            return get_machine(self.machine)
        return self.machine

    def label(self) -> str:
        """Human-readable row tag, e.g. ``"A/OC/2W"``."""
        m = self.machine if isinstance(self.machine, str) else self.machine.name
        return f"{m}/{self.workload.name}/{self.num_workers}W"


def row_fingerprint(spec: RowSpec) -> str:
    """Canonical content fingerprint of one dataset row.

    Folds in the resolved machine topology (structurally), the workload
    spec, the deployment, the label-grid resolutions, the feature schema
    (so appending a feature retires stale rows), and the store schema
    version.
    """
    rest = tuple(
        (f.name, getattr(spec, f.name))
        for f in dataclasses.fields(spec)
        if f.name != "machine"
    )
    return fingerprint(
        "bwap.learn.row", SCHEMA_VERSION, FEATURE_NAMES, spec.resolve_machine(), rest
    )


def _oracle_dwp(
    machine: Machine,
    workload,
    workers: Sequence[int],
    canonical: np.ndarray,
    *,
    coarse_step: float,
    refine_step: float,
) -> float:
    """Coarse-then-refine analytic argmin over the DWP range.

    Both ladders share one :class:`DWPProbeSession`, so the refinement
    around the coarse argmin re-scores only unseen DWPs (this is the
    narrower re-entry the session memo exists for).
    """
    session = DWPProbeSession(machine, workload, workers, canonical)
    coarse = np.round(np.arange(0.0, 1.0 + coarse_step / 2, coarse_step), 6)
    best, _ = session.best(coarse)
    lo = max(0.0, best - coarse_step)
    hi = min(1.0, best + coarse_step)
    fine = np.round(np.arange(lo, hi + refine_step / 2, refine_step), 6)
    best, _ = session.best(fine)
    return float(best)


def _compute_row(spec: RowSpec) -> Dict[str, object]:
    machine = spec.resolve_machine()
    workers = pick_worker_nodes(machine, spec.num_workers)
    if isinstance(spec.machine, str):
        from repro.experiments.common import get_canonical

        canonical = get_canonical(machine).weights(workers)
    else:
        canonical = CanonicalTuner(machine).weights(workers)
    features = feature_vector(machine, spec.workload, workers, canonical)
    label = _oracle_dwp(
        machine,
        spec.workload,
        workers,
        canonical,
        coarse_step=spec.coarse_step,
        refine_step=spec.refine_step,
    )
    return {
        "features": [float(x) for x in features],
        "label": label,
        "row": spec.label(),
    }


def build_row(spec: RowSpec) -> Dict[str, object]:
    """Featurise and oracle-label one row, through the result store.

    A hit replays the stored row bit-for-bit (floats JSON-round-trip via
    ``repr``); a miss computes then persists it. A payload whose feature
    width no longer matches the current schema is treated as corrupt and
    recomputed.
    """
    store = get_default_store()
    if store is None:
        return _compute_row(spec)
    fp = row_fingerprint(spec)
    payload = store.get(fp)
    if payload is not None:
        feats = payload.get("features")
        if (
            isinstance(feats, list)
            and len(feats) == len(FEATURE_NAMES)
            and isinstance(payload.get("label"), float)
        ):
            return payload
        store.stats.hits -= 1
        store.stats.misses += 1
        store.stats.corrupt += 1
    payload = _compute_row(spec)
    store.put(fp, payload)
    return payload


@dataclass(frozen=True)
class Dataset:
    """An assembled training set.

    ``X`` is (rows, features) float64 in :data:`FEATURE_NAMES` order,
    ``y`` the oracle DWP per row, ``rows`` the human-readable row tags.
    """

    X: np.ndarray
    y: np.ndarray
    feature_names: Tuple[str, ...]
    rows: Tuple[str, ...]

    def save(self, path) -> None:
        """Write a byte-deterministic ``.npz`` (fixed zip metadata)."""
        write_npz(
            path,
            {
                "version": np.array([DATASET_VERSION], dtype=np.int64),
                "X": np.asarray(self.X, dtype=np.float64),
                "y": np.asarray(self.y, dtype=np.float64),
                "feature_names": np.array(self.feature_names, dtype=np.str_),
                "rows": np.array(self.rows, dtype=np.str_),
            },
        )

    @classmethod
    def load(cls, path) -> "Dataset":
        with np.load(path, allow_pickle=False) as data:
            version = int(data["version"][0])
            if version != DATASET_VERSION:
                raise ValueError(
                    f"dataset version {version} != supported {DATASET_VERSION}"
                )
            return cls(
                X=np.array(data["X"], dtype=np.float64),
                y=np.array(data["y"], dtype=np.float64),
                feature_names=tuple(str(s) for s in data["feature_names"]),
                rows=tuple(str(s) for s in data["rows"]),
            )


def write_npz(path, arrays: Dict[str, np.ndarray]) -> None:
    """``np.savez`` with deterministic bytes.

    ``np.savez`` stamps each zip member with the current mtime, so two
    identical saves differ byte-wise. This writer fixes every zip header
    field (epoch timestamp, stored — not compressed — members, constant
    permissions) while keeping the file a regular ``np.load``-able npz.
    """
    with zipfile.ZipFile(path, "w", zipfile.ZIP_STORED) as zf:
        for name, arr in arrays.items():
            buf = io.BytesIO()
            np.lib.format.write_array(buf, np.asarray(arr), allow_pickle=False)
            info = zipfile.ZipInfo(name + ".npy", date_time=(1980, 1, 1, 0, 0, 0))
            info.compress_type = zipfile.ZIP_STORED
            info.external_attr = 0o644 << 16
            zf.writestr(info, buf.getvalue())


def suite_row_specs(*, work_bytes: Optional[float] = None) -> List[RowSpec]:
    """The Table-I suite across the paper's five deployments (25 rows)."""
    specs: List[RowSpec] = []
    for machine_name, num_workers in SUITE_DEPLOYMENTS:
        for wl in paper_benchmarks():
            if work_bytes is not None:
                wl = dataclasses.replace(wl, work_bytes=float(work_bytes))
            specs.append(RowSpec(machine_name, wl, num_workers))
    return specs


def random_row_specs(num_rows: int, seed: int = 20260808) -> List[RowSpec]:
    """``num_rows`` random-topology x random-workload rows.

    Deterministic in ``seed``; each row gets its own machine seed, so a
    dataset can grow (``num_rows`` 24 -> 48) without relabelling the
    first 24 rows.
    """
    if num_rows < 0:
        raise ValueError(f"num_rows must be non-negative, got {num_rows}")
    specs: List[RowSpec] = []
    for i in range(num_rows):
        machine = random_machine(seed + i)
        rng = np.random.default_rng(seed + i)
        workload = random_workload(rng, name=f"synthetic-{seed + i}")
        num_workers = int(rng.integers(1, machine.num_nodes + 1))
        specs.append(RowSpec(machine, workload, num_workers))
    return specs


def default_row_specs(
    *, num_random: int = 24, seed: int = 20260808, include_suite: bool = True
) -> List[RowSpec]:
    """The standard training mix: Table-I suite + random topologies."""
    specs = suite_row_specs() if include_suite else []
    specs.extend(random_row_specs(num_random, seed=seed))
    return specs


def build_dataset(
    specs: Sequence[RowSpec], *, jobs: Optional[int] = None
) -> Dataset:
    """Build (or resume) a dataset over ``specs``.

    Fans out across processes via
    :func:`repro.experiments.common.fan_out` (honouring ``--jobs`` /
    ``BWAP_JOBS`` and the opt-in heartbeat); each row consults the result
    store first, so an interrupted build resumes where it stopped.
    """
    from repro.experiments.common import fan_out

    rows = fan_out(build_row, list(specs), jobs=jobs, label="learn-dataset")
    X = np.array([r["features"] for r in rows], dtype=np.float64)
    y = np.array([r["label"] for r in rows], dtype=np.float64)
    return Dataset(
        X=X,
        y=y,
        feature_names=FEATURE_NAMES,
        rows=tuple(str(r["row"]) for r in rows),
    )
