"""Learned DWP warm-start: predict the weighted-interleave ratio.

The paper's DWP tuner hill-climbs from DWP = 0, paying one measurement
window and one incremental migration per step. This package learns to
predict the optimum from cheap observables — the Table-I counter
characterisation of the workload plus summary features of the machine's
profiled bandwidth matrix — so the climb can jump straight to the
predicted DWP in a single placement move and only polish from there,
cutting probes-to-convergence and migration traffic 2-3x.

Three layers:

* :mod:`repro.learn.features` — the stable, named feature vector;
* :mod:`repro.learn.dataset` — store-resumable oracle-labelled dataset
  generation over the Table-I suite and random topologies;
* :mod:`repro.learn.model` — a pure-numpy ridge regressor, versioned
  deterministic checkpoints, and :class:`WarmStartPredictor`, the object
  the tuners accept as ``warm_start=``.

The committed checkpoint lives at ``models/dwp_warmstart_v1.npz``; the
``bwap-repro learn`` CLI verb rebuilds the dataset, retrains, and
evaluates it.
"""

from repro.learn.features import (
    FEATURE_NAMES,
    PROFILE_FEATURE_NAMES,
    PROFILE_WORK_BYTES,
    TOPOLOGY_FEATURE_NAMES,
    feature_vector,
    profile_characterisation,
    topology_features,
)
from repro.learn.dataset import (
    COARSE_STEP,
    DATASET_VERSION,
    REFINE_STEP,
    SUITE_DEPLOYMENTS,
    Dataset,
    RowSpec,
    build_dataset,
    build_row,
    default_row_specs,
    random_row_specs,
    row_fingerprint,
    suite_row_specs,
    write_npz,
)
from repro.learn.model import (
    CHECKPOINT_VERSION,
    RidgeModel,
    WarmStartPredictor,
    evaluate,
    holdout_evaluate,
    load_predictor,
    train_ridge,
)

#: Repo-relative path of the committed checkpoint.
DEFAULT_CHECKPOINT = "models/dwp_warmstart_v1.npz"

__all__ = [
    "FEATURE_NAMES",
    "PROFILE_FEATURE_NAMES",
    "PROFILE_WORK_BYTES",
    "TOPOLOGY_FEATURE_NAMES",
    "feature_vector",
    "profile_characterisation",
    "topology_features",
    "COARSE_STEP",
    "DATASET_VERSION",
    "REFINE_STEP",
    "SUITE_DEPLOYMENTS",
    "Dataset",
    "RowSpec",
    "build_dataset",
    "build_row",
    "default_row_specs",
    "random_row_specs",
    "row_fingerprint",
    "suite_row_specs",
    "write_npz",
    "CHECKPOINT_VERSION",
    "RidgeModel",
    "WarmStartPredictor",
    "evaluate",
    "holdout_evaluate",
    "load_predictor",
    "train_ridge",
    "DEFAULT_CHECKPOINT",
]
