"""Feature extraction for learned DWP prediction.

The model sees exactly what BWAP itself can observe before tuning starts:

* **Counter features** — the Table-I-style access characterisation that a
  short profiling run produces (:meth:`AccessCharacterisation.features`).
  At dataset-build time *and* at serve time the characterisation comes
  from the same code path — a short uniform-all profiling run on a fresh
  simulator — so the distribution the model was trained on is the
  distribution it predicts on.
* **Topology features** — summary statistics of the machine's profiled
  bandwidth matrix and of the chosen worker set (node count, link
  asymmetry, local:remote capacity ratios, canonical worker mass). These
  are free: the canonical tuner already profiled the matrix at install
  time.

The combined vector's field order is stable and named by
:data:`FEATURE_NAMES`; appending is allowed, reordering/removing requires
a checkpoint version bump in :mod:`repro.learn.model`.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.engine.app import Application
from repro.engine.sim import Simulator
from repro.memsim.policies import UniformAll
from repro.perf.profiler import (
    CHARACTERISATION_FEATURE_NAMES,
    AccessCharacterisation,
    AccessProfiler,
)
from repro.topology.machine import Machine
from repro.workloads.base import WorkloadSpec

#: Stable field order of :func:`topology_features`.
TOPOLOGY_FEATURE_NAMES: Tuple[str, ...] = (
    "num_nodes",
    "num_workers",
    "worker_fraction",
    "local_bw_mean",
    "local_bw_min",
    "remote_bw_mean",
    "remote_bw_max",
    "remote_asymmetry",
    "remote_to_local_ratio",
    "worker_local_capacity_fraction",
    "canonical_worker_mass",
)

#: Features derived from the profiling run and the deployment jointly —
#: most importantly the demand:capacity ratios, the first-order driver of
#: where the optimal DWP lies (ample worker-local capacity pulls pages
#: toward the workers; demand beyond it pushes mass out across the
#: canonical distribution).
PROFILE_FEATURE_NAMES: Tuple[str, ...] = (
    "profile_stall_fraction",
    "profile_throughput_gbps",
    "demand_to_worker_capacity",
    "demand_to_machine_capacity",
)

#: Stable field order of the combined :func:`feature_vector`.
FEATURE_NAMES: Tuple[str, ...] = (
    CHARACTERISATION_FEATURE_NAMES + PROFILE_FEATURE_NAMES + TOPOLOGY_FEATURE_NAMES
)

#: Traffic cap for the profiling run that produces counter features. The
#: characterisation only needs steady-state rates, not a full execution,
#: so the workload is truncated to this many bytes of work — a profiling
#: run is then a few simulated seconds regardless of the real job length.
PROFILE_WORK_BYTES: float = 20e9


def topology_features(
    machine: Machine,
    worker_nodes: Sequence[int],
    canonical: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Topology feature vector (fields named by TOPOLOGY_FEATURE_NAMES).

    ``canonical`` is the canonical weight distribution for this worker
    set; when omitted the ``canonical_worker_mass`` feature is computed
    from a fresh :class:`~repro.core.canonical.CanonicalTuner`.
    """
    workers = tuple(int(w) for w in worker_nodes)
    n = machine.num_nodes
    matrix = machine.nominal_bandwidth_matrix()
    diag = np.diag(matrix)
    if n > 1:
        off = matrix[~np.eye(n, dtype=bool)]
        remote_mean = float(off.mean())
        remote_max = float(off.max())
        remote_asymmetry = float(off.max() / off.min())
    else:
        remote_mean = remote_max = float(diag[0])
        remote_asymmetry = 1.0
    if canonical is None:
        from repro.core.canonical import CanonicalTuner

        canonical = CanonicalTuner(machine).weights(workers)
    canonical = np.asarray(canonical, dtype=float)
    worker_mask = np.zeros(n, dtype=bool)
    worker_mask[list(workers)] = True
    return np.array(
        [
            float(n),
            float(len(workers)),
            len(workers) / n,
            float(diag.mean()),
            float(diag.min()),
            remote_mean,
            remote_max,
            remote_asymmetry,
            remote_mean / float(diag.mean()),
            float(diag[worker_mask].sum() / diag.sum()),
            float(canonical[worker_mask].sum()),
        ],
        dtype=np.float64,
    )


def _profile_run(
    machine: Machine,
    workload: WorkloadSpec,
    worker_nodes: Sequence[int],
    *,
    num_threads: Optional[int] = None,
) -> Tuple[AccessCharacterisation, float, float]:
    """One short profiling run: (characterisation, stall, throughput).

    Runs the workload (truncated to :data:`PROFILE_WORK_BYTES` of work)
    on its worker set under uniform-all placement — the unconstrained-
    bandwidth conditions Table I profiles under. Both the dataset builder
    and the serve-time :class:`~repro.learn.model.WarmStartPredictor`
    call this exact function, which is what keeps training and serving
    consistent.
    """
    profiled = dataclasses.replace(
        workload, work_bytes=min(float(workload.work_bytes), PROFILE_WORK_BYTES)
    )
    sim = Simulator(machine)
    sim.add_app(
        Application(
            "profile",
            profiled,
            machine,
            tuple(int(w) for w in worker_nodes),
            num_threads=num_threads,
            policy=UniformAll(),
        )
    )
    result = sim.run()
    tele = result.telemetry["profile"]
    profiler = AccessProfiler(workload.name)
    profiler.extend(tele.traffic)
    return (
        profiler.characterise(),
        float(tele.mean_stall_fraction),
        float(tele.mean_throughput_gbps),
    )


def profile_characterisation(
    machine: Machine,
    workload: WorkloadSpec,
    worker_nodes: Sequence[int],
    *,
    num_threads: Optional[int] = None,
) -> AccessCharacterisation:
    """Counter characterisation from a short stand-alone profiling run."""
    char, _, _ = _profile_run(machine, workload, worker_nodes, num_threads=num_threads)
    return char


def feature_vector(
    machine: Machine,
    workload: WorkloadSpec,
    worker_nodes: Sequence[int],
    canonical: Optional[np.ndarray] = None,
    *,
    num_threads: Optional[int] = None,
) -> np.ndarray:
    """The full model input: counter ++ profile ++ topology features.

    Field order is :data:`FEATURE_NAMES`; float64 throughout.
    """
    char, stall, throughput = _profile_run(
        machine, workload, worker_nodes, num_threads=num_threads
    )
    counters = char.features()
    diag = np.diag(machine.nominal_bandwidth_matrix())
    demand_gbps = counters[2] / 1000.0  # total_mbps -> GB/s
    worker_capacity = float(diag[list(int(w) for w in worker_nodes)].sum())
    profile = np.array(
        [
            stall,
            throughput,
            demand_gbps / worker_capacity,
            demand_gbps / float(diag.sum()),
        ],
        dtype=np.float64,
    )
    topo = topology_features(machine, worker_nodes, canonical)
    return np.concatenate([counters, profile, topo])
