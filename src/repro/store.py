"""Persistent content-addressed result store.

Every experiment run is a pure function of its :class:`ScenarioSpec` (the
simulator is seeded end to end), so its outcome can be stored on disk under
a *canonical fingerprint* of the inputs and replayed forever: sweeps, the
fault matrix, robustness grids, and ``--jobs`` worker pools resume
incrementally and share results across processes.

Two layers live here:

* :func:`canonical_bytes` / :func:`fingerprint` — a canonical byte encoding
  of scenario inputs (scalars, strings, tuples, numpy arrays, dataclasses,
  :class:`~repro.topology.Machine` topologies). Unlike ``repr()``, the
  encoding is *total* over the value: a numpy array contributes its dtype,
  shape, and raw bytes, never a print-truncated summary, and an
  unsupported type raises ``TypeError`` instead of silently degrading to
  an address-dependent or lossy string.
* :class:`ResultStore` — a directory of JSON entries keyed by fingerprint,
  with atomic writes (temp file + ``os.replace``), corruption-tolerant
  reads (a truncated, garbled, or stale-schema entry is a *miss*, never a
  crash), and hit/miss statistics.

The store itself is value-agnostic (it moves JSON dicts); the
``RunOutcome`` payload codec and the ``run_spec`` wiring live in
:mod:`repro.experiments.common`. Environment knobs:

``BWAP_STORE=0``
    Disable the default store entirely (the CLI's ``--no-store``).
``BWAP_STORE_DIR``
    Store root (default ``~/.cache/bwap-repro/store``, honouring
    ``XDG_CACHE_HOME``).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional

import numpy as np

from repro.topology import Machine

#: Version of both the fingerprint recipe and the entry payload layout.
#: Bump whenever the simulator's observable behaviour, the fingerprint
#: encoding, or the ``RunOutcome`` payload changes: old entries then simply
#: stop matching and are recomputed (never misread).
SCHEMA_VERSION = 1


# --------------------------------------------------------------------- #
# Canonical fingerprinting
# --------------------------------------------------------------------- #


def canonical_bytes(obj: Any) -> bytes:
    """A canonical, total byte encoding of a scenario component.

    Supported: ``None``, ``bool``, ``int``, ``float``, ``str``, ``bytes``,
    numpy scalars and arrays, tuples/lists, dicts (sorted by encoded key),
    dataclasses (class name + every field, recursively), and
    :class:`~repro.topology.Machine` (structural: nodes, links, routing
    parameters). Every branch is length- and type-tagged, so distinct
    values cannot collide by concatenation, and nothing is ever truncated
    (the failure mode of ``repr()`` on large arrays). Raises ``TypeError``
    for anything else.
    """
    parts = []
    _encode(obj, parts)
    return b"".join(parts)


def _tag(parts, kind: str, payload: bytes) -> None:
    parts.append(f"{kind}:{len(payload)}:".encode())
    parts.append(payload)


def _encode(obj: Any, parts) -> None:
    if obj is None:
        _tag(parts, "N", b"")
    elif isinstance(obj, bool) or isinstance(obj, np.bool_):
        _tag(parts, "b", b"1" if obj else b"0")
    elif isinstance(obj, (int, np.integer)):
        _tag(parts, "i", str(int(obj)).encode())
    elif isinstance(obj, (float, np.floating)):
        # 0.0 == -0.0 and every NaN payload collapse under ==; encode the
        # IEEE bits so the fingerprint distinguishes exactly what the
        # simulator would see.
        _tag(parts, "f", np.float64(obj).tobytes())
    elif isinstance(obj, str):
        _tag(parts, "s", obj.encode())
    elif isinstance(obj, bytes):
        _tag(parts, "y", obj)
    elif isinstance(obj, np.ndarray):
        arr = np.ascontiguousarray(obj)
        head = f"{arr.dtype.str}|{arr.shape}".encode()
        _tag(parts, "a", head + b"|" + arr.tobytes())
    elif isinstance(obj, (tuple, list)):
        parts.append(f"t:{len(obj)}[".encode())
        for item in obj:
            _encode(item, parts)
        parts.append(b"]")
    elif isinstance(obj, dict):
        items = sorted((canonical_bytes(k), v) for k, v in obj.items())
        parts.append(f"d:{len(items)}{{".encode())
        for key_bytes, value in items:
            _tag(parts, "k", key_bytes)
            _encode(value, parts)
        parts.append(b"}")
    elif isinstance(obj, Machine):
        _encode_machine(obj, parts)
    elif dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        cls = type(obj)
        parts.append(f"D:{cls.__module__}.{cls.__qualname__}(".encode())
        for f in dataclasses.fields(obj):
            _tag(parts, "k", f.name.encode())
            _encode(getattr(obj, f.name), parts)
        parts.append(b")")
    else:
        raise TypeError(
            f"cannot canonically fingerprint {type(obj).__module__}."
            f"{type(obj).__qualname__}: {obj!r}"
        )


def _encode_machine(machine: Machine, parts) -> None:
    """Structural encoding: two machines with equal topology fingerprint
    equally, however they were constructed."""
    parts.append(b"M(")
    _encode(machine.name, parts)
    _encode(machine.hop_efficiency, parts)
    _encode(machine.remote_ingress_factor, parts)
    _encode(tuple(machine.node(i) for i in machine.node_ids), parts)
    _encode(tuple(sorted(machine.links, key=lambda li: li.endpoints)), parts)
    parts.append(b")")


def fingerprint(*components: Any) -> str:
    """SHA-256 hex digest of the canonical encoding of ``components``."""
    return hashlib.sha256(canonical_bytes(components)).hexdigest()


# --------------------------------------------------------------------- #
# The store
# --------------------------------------------------------------------- #


@dataclass
class StoreStats:
    """Per-process counters of one :class:`ResultStore` instance."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    corrupt: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from disk (0 when unused)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def summary(self) -> str:
        return (
            f"{self.hits} hits / {self.misses} misses "
            f"(hit rate {self.hit_rate:.3f}, {self.puts} writes, "
            f"{self.corrupt} corrupt entries skipped)"
        )


@dataclass
class PruneStats:
    """What one :meth:`ResultStore.prune` pass did."""

    examined: int = 0
    pruned: int = 0
    pruned_bytes: int = 0
    kept: int = 0
    kept_bytes: int = 0

    def summary(self) -> str:
        return (
            f"pruned {self.pruned}/{self.examined} entries "
            f"({self.pruned_bytes / 1e6:.2f} MB), kept {self.kept} "
            f"({self.kept_bytes / 1e6:.2f} MB)"
        )


class ResultStore:
    """A directory of content-addressed JSON entries.

    Entries live at ``<root>/<fp[:2]>/<fp>.json`` and carry their own
    ``schema`` and ``fingerprint`` fields, so a stale or misplaced file is
    detected on read. Writers are atomic (temp file in the target
    directory + ``os.replace``), so concurrent ``--jobs`` workers racing
    on one key leave a complete entry from *some* writer and a reader
    never observes a partial file. Reads tolerate any corruption —
    truncated JSON, garbage bytes, a schema/fingerprint mismatch, a
    non-dict payload — by reporting a miss (counted in
    :attr:`stats`\\ ``.corrupt``) so the caller recomputes and overwrites.
    """

    def __init__(self, root: os.PathLike) -> None:
        self.root = Path(root)
        self.stats = StoreStats()

    def path_for(self, fp: str) -> Path:
        """Entry file for a fingerprint (two-level fan-out by prefix)."""
        return self.root / fp[:2] / f"{fp}.json"

    def get(self, fp: str) -> Optional[Dict[str, Any]]:
        """The payload stored under ``fp``, or None on a miss.

        Never raises for a bad entry: unreadable or invalid files count as
        (corrupt) misses.
        """
        path = self.path_for(fp)
        try:
            raw = path.read_text()
        except (OSError, UnicodeDecodeError):
            self.stats.misses += 1
            return None
        try:
            entry = json.loads(raw)
            if (
                not isinstance(entry, dict)
                or entry.get("schema") != SCHEMA_VERSION
                or entry.get("fingerprint") != fp
                or not isinstance(entry.get("payload"), dict)
            ):
                raise ValueError("invalid store entry")
        except (ValueError, TypeError):
            self.stats.misses += 1
            self.stats.corrupt += 1
            return None
        self.stats.hits += 1
        return entry["payload"]

    def put(self, fp: str, payload: Dict[str, Any]) -> None:
        """Atomically write ``payload`` under ``fp`` (last writer wins)."""
        path = self.path_for(fp)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {"schema": SCHEMA_VERSION, "fingerprint": fp, "payload": payload}
        fd, tmp = tempfile.mkstemp(
            prefix=f".{fp[:12]}.", suffix=".tmp", dir=path.parent
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(entry, handle)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stats.puts += 1

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for entry in list(self.root.glob("*/*.json")):
            try:
                entry.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def prune(
        self,
        *,
        max_age_s: Optional[float] = None,
        max_bytes: Optional[int] = None,
        dry_run: bool = False,
    ) -> "PruneStats":
        """Evict entries by age and/or total size; returns what happened.

        Age first: anything older than ``max_age_s`` (by mtime) goes.
        Then, if the survivors still exceed ``max_bytes``, oldest entries
        are evicted until the store fits. Ties and ordering are by
        ``(mtime, path)`` so a prune is deterministic for a given tree.
        A pruned entry is simply a future clean miss — the content
        address recomputes and rewrites it, so pruning can never corrupt
        a result, only un-cache it.
        """
        if max_age_s is None and max_bytes is None:
            raise ValueError("prune needs max_age_s and/or max_bytes")
        if max_age_s is not None and max_age_s < 0:
            raise ValueError(f"max_age_s must be >= 0, got {max_age_s}")
        if max_bytes is not None and max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        entries = []
        for path in self.root.glob("*/*.json"):
            try:
                st = path.stat()
            except OSError:
                continue
            entries.append((st.st_mtime, str(path), path, st.st_size))
        entries.sort()
        stats = PruneStats(examined=len(entries))
        now = time.time()
        keep_bytes = 0
        victims = []
        survivors = []
        for mtime, _key, path, size in entries:
            if max_age_s is not None and now - mtime > max_age_s:
                victims.append((path, size))
            else:
                survivors.append((path, size))
                keep_bytes += size
        if max_bytes is not None:
            # survivors are oldest-first; evict from the front until we fit.
            idx = 0
            while keep_bytes > max_bytes and idx < len(survivors):
                path, size = survivors[idx]
                victims.append((path, size))
                keep_bytes -= size
                idx += 1
        for path, size in victims:
            stats.pruned += 1
            stats.pruned_bytes += size
            if not dry_run:
                try:
                    path.unlink()
                except OSError:
                    stats.pruned -= 1
                    stats.pruned_bytes -= size
        stats.kept = stats.examined - stats.pruned
        stats.kept_bytes = keep_bytes
        return stats


# --------------------------------------------------------------------- #
# The process-default store
# --------------------------------------------------------------------- #

_DEFAULT_STORE: Optional[ResultStore] = None
_DEFAULT_STORE_ROOT: Optional[Path] = None


def default_store_root() -> Path:
    """Store root: ``BWAP_STORE_DIR``, else the user cache directory."""
    env = os.environ.get("BWAP_STORE_DIR")
    if env:
        return Path(env)
    cache_home = os.environ.get("XDG_CACHE_HOME")
    base = Path(cache_home) if cache_home else Path.home() / ".cache"
    return base / "bwap-repro" / "store"


def store_enabled() -> bool:
    """False when ``BWAP_STORE`` is set to ``0``/``off``/``false``/empty."""
    return os.environ.get("BWAP_STORE", "1").strip().lower() not in (
        "0",
        "off",
        "false",
        "no",
        "",
    )


def get_default_store() -> Optional[ResultStore]:
    """The process-wide store, or None when disabled.

    The instance is cached per root so hit/miss statistics accumulate
    across an experiment run; changing ``BWAP_STORE_DIR`` mid-process
    takes effect on the next call.
    """
    global _DEFAULT_STORE, _DEFAULT_STORE_ROOT
    if not store_enabled():
        return None
    root = default_store_root()
    if _DEFAULT_STORE is None or _DEFAULT_STORE_ROOT != root:
        _DEFAULT_STORE = ResultStore(root)
        _DEFAULT_STORE_ROOT = root
    return _DEFAULT_STORE
