"""Process abstraction over the simulated VM.

BWAP's user-level placement (paper Section III-B2) starts by walking the
process's currently-mapped address ranges that are likely to hold shared
data — the ``.data`` and BSS segments plus dynamic mappings, as read from
``/proc/<pid>/maps``. This module provides that view over the simulated
address space.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.memsim.pages import AddressSpace, Segment, SegmentKind
from repro.units import PAGE_SIZE


@dataclass(frozen=True)
class VMA:
    """One virtual memory area, as a ``/proc/maps``-style record."""

    start: int
    end: int
    name: str
    kind: SegmentKind

    def __post_init__(self) -> None:
        if self.start < 0 or self.end <= self.start:
            raise ValueError(f"invalid VMA range [{self.start:#x}, {self.end:#x})")

    @property
    def length(self) -> int:
        """Size in bytes."""
        return self.end - self.start

    @property
    def num_pages(self) -> int:
        """Size in pages."""
        return self.length // PAGE_SIZE


class Process:
    """A process: a pid and its address space.

    Parameters
    ----------
    pid:
        Process identifier (only used in reports).
    space:
        Backing simulated address space.
    """

    def __init__(self, pid: int, space: AddressSpace):
        if pid <= 0:
            raise ValueError(f"pid must be positive, got {pid}")
        self.pid = pid
        self.space = space

    def vmas(self) -> List[VMA]:
        """All mapped areas, in address order (a ``/proc/maps`` read)."""
        out: List[VMA] = []
        for seg in self.space.segments:
            start = seg.start_page * PAGE_SIZE
            out.append(
                VMA(start=start, end=start + seg.size_bytes, name=seg.name, kind=seg.kind)
            )
        return out

    def data_vmas(self) -> List[VMA]:
        """The areas BWAP targets: everything likely to hold shared data.

        In our model every mapped segment is data (there is no code
        segment), so this equals :meth:`vmas`; kept separate because the
        real implementation filters the maps list.
        """
        return self.vmas()

    def segment_for_vma(self, vma: VMA) -> Segment:
        """The segment backing a VMA."""
        for seg in self.space.segments:
            if seg.start_page * PAGE_SIZE == vma.start:
                return seg
        raise KeyError(f"no segment backs VMA {vma.name!r} at {vma.start:#x}")

    def numa_maps(self) -> List[Tuple[str, dict]]:
        """Per-VMA page distribution, like ``/proc/<pid>/numa_maps``."""
        out = []
        for seg in self.space.segments:
            hist = self.space.node_histogram([seg])
            counts = {f"N{n}": int(c) for n, c in enumerate(hist) if c > 0}
            out.append((seg.name, counts))
        return out
