"""Simulated ``libnuma`` with BWAP's ``bw-interleaved`` extension.

The paper implements BWAP "as an extension to Linux libnuma ... enriching
the original interface with a bw-interleaved policy option that
automatically determines memory nodes to place the application pages on,
and the per-node weights" (Section I). This module reproduces the familiar
libnuma entry points over the simulated machine plus that extension, so
example code reads like real libnuma client code.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.canonical import CanonicalTuner
from repro.core.dwp import combine_weights
from repro.core.interleave import PlacementOutcome, apply_weighted_placement
from repro.memsim.mbind import MbindFlag, MPol, mbind_segment
from repro.memsim.pages import AddressSpace, Segment, SegmentKind
from repro.oslib.process import Process
from repro.topology.machine import Machine


class LibNuma:
    """libnuma bound to one machine (the real library binds the host).

    Parameters
    ----------
    machine:
        The NUMA machine this "host" exposes.
    canonical_tuner:
        Pre-profiled canonical tuner; created on demand when omitted (the
        real BWAP ships the canonical profiles with the installation).
    """

    def __init__(self, machine: Machine, canonical_tuner: Optional[CanonicalTuner] = None):
        self.machine = machine
        self._canonical = canonical_tuner

    # ------------------------------------------------------------------ #
    # Classic libnuma surface
    # ------------------------------------------------------------------ #

    def numa_available(self) -> bool:
        """True when the machine has more than one node."""
        return self.machine.num_nodes > 1

    def numa_num_configured_nodes(self) -> int:
        """Number of NUMA nodes."""
        return self.machine.num_nodes

    def numa_num_configured_cpus(self) -> int:
        """Number of hardware threads."""
        return self.machine.num_cores

    def numa_node_size(self, node: int) -> int:
        """DRAM bytes attached to a node."""
        return self.machine.node(node).memory_bytes

    def numa_alloc_onnode(
        self, process: Process, name: str, size_bytes: int, node: int
    ) -> Segment:
        """Allocate memory bound to one node."""
        seg = process.space.map_segment(name, size_bytes, SegmentKind.SHARED)
        mbind_segment(process.space, seg, MPol.BIND, [node], flags=MbindFlag.MOVE)
        return seg

    def numa_alloc_interleaved(
        self, process: Process, name: str, size_bytes: int
    ) -> Segment:
        """Allocate memory uniformly interleaved across all nodes."""
        seg = process.space.map_segment(name, size_bytes, SegmentKind.SHARED)
        mbind_segment(
            process.space,
            seg,
            MPol.INTERLEAVE,
            list(self.machine.node_ids),
            flags=MbindFlag.MOVE,
        )
        return seg

    def numa_interleave_memory(
        self, process: Process, segment: Segment, nodes: Sequence[int]
    ) -> None:
        """Interleave an existing range over a node set."""
        mbind_segment(process.space, segment, MPol.INTERLEAVE, nodes, flags=MbindFlag.MOVE)

    # ------------------------------------------------------------------ #
    # The BWAP extension
    # ------------------------------------------------------------------ #

    def canonical_tuner(self) -> CanonicalTuner:
        """The machine's canonical tuner (profiled lazily)."""
        if self._canonical is None:
            self._canonical = CanonicalTuner(self.machine)
        return self._canonical

    def numa_bw_interleave(
        self,
        process: Process,
        worker_nodes: Sequence[int],
        *,
        dwp: float = 0.0,
        mode: str = "user",
    ) -> PlacementOutcome:
        """The ``bw-interleaved`` policy: weighted placement from canonical
        weights, optionally shifted by a data-to-worker-proximity factor.

        This is the static entry point; the full BWAP pipeline (with the
        on-line DWP search) is driven by
        :func:`repro.core.bwap.bwap_init` inside a simulation.
        """
        canonical = self.canonical_tuner().weights(worker_nodes)
        weights = combine_weights(canonical, worker_nodes, dwp)
        return apply_weighted_placement(process.space, weights, mode=mode)

    def numa_bw_interleave_weights(
        self, worker_nodes: Sequence[int], dwp: float = 0.0
    ) -> np.ndarray:
        """The per-node weights the policy would enforce (for inspection,
        mirroring the numactl integration the authors added)."""
        canonical = self.canonical_tuner().weights(worker_nodes)
        return combine_weights(canonical, worker_nodes, dwp)
