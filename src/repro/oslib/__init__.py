"""OS-level surface: processes, VMAs, simulated libnuma and numactl."""

from repro.oslib.process import VMA, Process
from repro.oslib.libnuma import LibNuma
from repro.oslib.numactl import (
    NumactlError,
    NumactlInvocation,
    parse_nodes,
    parse_numactl,
)

__all__ = [
    "VMA",
    "Process",
    "LibNuma",
    "NumactlError",
    "NumactlInvocation",
    "parse_nodes",
    "parse_numactl",
]
