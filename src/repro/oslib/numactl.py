"""A ``numactl``-style front end, including the paper's extension.

The authors "added the weighted interleave option to numactl tool and
libnuma library to avoid the burden of application-level changes"
(Section III-B2). This module mirrors the numactl command-line surface
over the simulated machine: parse the familiar flags, produce the
placement policy and CPU binding to deploy an application with, and
support the new ``--weighted-interleave`` option.

Example::

    inv = parse_numactl(machine, ["--interleave=0-3", "--cpunodebind=0,1"])
    app = Application("a", workload, machine, inv.cpu_nodes, policy=inv.policy)

    inv = parse_numactl(machine, ["--weighted-interleave=0.4,0.3,0.2,0.1"])
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.memsim.mbind import MPol
from repro.memsim.policies import (
    FirstTouch,
    PlacementPolicy,
    UniformAll,
    WeightedInterleave,
)
from repro.topology.inspect import describe
from repro.topology.machine import Machine


class NumactlError(ValueError):
    """Raised for malformed or conflicting numactl arguments."""


@dataclass(frozen=True)
class NumactlInvocation:
    """Parsed outcome of a numactl command line.

    Attributes
    ----------
    policy:
        Placement policy to construct the application with (None for the
        default first-touch — numactl without memory flags).
    cpu_nodes:
        Nodes the threads are bound to (None = scheduler's choice).
    hardware_report:
        The ``--hardware`` listing, when requested.
    """

    policy: Optional[PlacementPolicy]
    cpu_nodes: Optional[Tuple[int, ...]]
    hardware_report: Optional[str] = None


def parse_nodes(spec: str, machine: Machine) -> Tuple[int, ...]:
    """Parse a numactl node list: ``"0-2,5"`` or ``"all"``."""
    spec = spec.strip()
    if not spec:
        raise NumactlError("empty node specification")
    if spec == "all":
        return machine.node_ids
    out: List[int] = []
    for part in spec.split(","):
        part = part.strip()
        if "-" in part:
            try:
                lo_s, hi_s = part.split("-", 1)
                lo, hi = int(lo_s), int(hi_s)
            except ValueError:
                raise NumactlError(f"malformed node range {part!r}") from None
            if lo > hi:
                raise NumactlError(f"inverted node range {part!r}")
            out.extend(range(lo, hi + 1))
        else:
            try:
                out.append(int(part))
            except ValueError:
                raise NumactlError(f"malformed node id {part!r}") from None
    for node in out:
        if not 0 <= node < machine.num_nodes:
            raise NumactlError(f"node {node} does not exist on {machine.name!r}")
    if len(set(out)) != len(out):
        raise NumactlError(f"duplicate nodes in {spec!r}")
    return tuple(out)


def _parse_weights(spec: str, machine: Machine) -> np.ndarray:
    parts = [p.strip() for p in spec.split(",")]
    try:
        weights = np.array([float(p) for p in parts])
    except ValueError:
        raise NumactlError(f"malformed weight list {spec!r}") from None
    if len(weights) != machine.num_nodes:
        raise NumactlError(
            f"{len(weights)} weights for {machine.num_nodes}-node machine"
        )
    if (weights < 0).any() or weights.sum() <= 0:
        raise NumactlError("weights must be non-negative with positive sum")
    return weights


class _InterleaveSubset(PlacementPolicy):
    """numactl --interleave over an explicit node subset."""

    name = "numactl-interleave"

    def __init__(self, nodes: Sequence[int]):
        self.nodes = tuple(nodes)

    def place(self, space, ctx):
        from repro.memsim.mbind import MbindFlag, mbind_segment
        from repro.memsim.policies import PlacementStats

        stats = PlacementStats()
        for seg in space.segments:
            res = mbind_segment(
                space, seg, MPol.INTERLEAVE, self.nodes,
                flags=MbindFlag.MOVE | MbindFlag.STRICT,
            )
            stats += PlacementStats(res.pages_touched, res.pages_moved)
        return stats


class _BindSubset(PlacementPolicy):
    """numactl --membind: all memory from the given nodes (round-robin)."""

    name = "numactl-membind"

    def __init__(self, nodes: Sequence[int]):
        self.nodes = tuple(nodes)

    def place(self, space, ctx):
        return _InterleaveSubset(self.nodes).place(space, ctx)


def parse_numactl(machine: Machine, args: Sequence[str]) -> NumactlInvocation:
    """Parse numactl-style arguments into a deployable invocation.

    Supported flags: ``--interleave=<nodes>``, ``--membind=<nodes>``,
    ``--preferred=<node>``, ``--weighted-interleave=<w0,w1,...>`` (the
    paper's extension), ``--cpunodebind=<nodes>``, ``--localalloc``,
    ``--hardware``.
    """
    policy: Optional[PlacementPolicy] = None
    cpu_nodes: Optional[Tuple[int, ...]] = None
    hardware: Optional[str] = None

    def set_policy(p: PlacementPolicy) -> None:
        nonlocal policy
        if policy is not None:
            raise NumactlError("conflicting memory-policy flags")
        policy = p

    for arg in args:
        if arg == "--hardware" or arg == "-H":
            hardware = describe(machine)
        elif arg == "--localalloc" or arg == "-l":
            set_policy(FirstTouch())
        elif arg.startswith("--interleave="):
            nodes = parse_nodes(arg.split("=", 1)[1], machine)
            if nodes == machine.node_ids:
                set_policy(UniformAll())
            else:
                set_policy(_InterleaveSubset(nodes))
        elif arg.startswith("--membind="):
            nodes = parse_nodes(arg.split("=", 1)[1], machine)
            set_policy(_BindSubset(nodes))
        elif arg.startswith("--preferred="):
            nodes = parse_nodes(arg.split("=", 1)[1], machine)
            if len(nodes) != 1:
                raise NumactlError("--preferred takes exactly one node")
            set_policy(_BindSubset(nodes))
        elif arg.startswith("--weighted-interleave="):
            weights = _parse_weights(arg.split("=", 1)[1], machine)
            set_policy(WeightedInterleave(weights))
        elif arg.startswith("--cpunodebind="):
            cpu_nodes = parse_nodes(arg.split("=", 1)[1], machine)
        else:
            raise NumactlError(f"unknown numactl argument {arg!r}")

    return NumactlInvocation(
        policy=policy, cpu_nodes=cpu_nodes, hardware_report=hardware
    )
