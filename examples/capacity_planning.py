#!/usr/bin/env python
"""Capacity planning: choose a deployment for a workload mix.

A practical use of the library beyond reproducing the paper: given a
machine and a pair of applications — one latency-critical, one throughput-
oriented — evaluate candidate partitionings and placements, and pick the
cheapest configuration that meets the latency app's stall budget while
maximising the batch app's throughput. This is the consolidation problem
of the paper's Section III-B3 posed as a planning question.

Run:  python examples/capacity_planning.py
"""

from repro import (
    Application,
    CanonicalTuner,
    FirstTouch,
    Simulator,
    bwap_init,
    machine_a,
    pick_worker_nodes,
    swaptions,
    ocean_cp,
)

#: The latency-critical app may stall on memory at most this share of cycles.
STALL_BUDGET = 0.02


def evaluate(num_batch_workers: int, use_bwap: bool):
    """One candidate configuration: batch app on N nodes, BWAP on/off."""
    machine = machine_a()
    batch_nodes = pick_worker_nodes(machine, num_batch_workers)
    service_nodes = tuple(n for n in machine.node_ids if n not in batch_nodes)

    sim = Simulator(machine)
    sim.add_app(
        Application("service", swaptions(), machine, service_nodes,
                    policy=FirstTouch(), looping=True)
    )
    batch = sim.add_app(
        Application("batch", ocean_cp(), machine, batch_nodes,
                    policy=None if use_bwap else FirstTouch())
    )
    if use_bwap:
        bwap_init(sim, batch, canonical_tuner=CanonicalTuner(machine),
                  high_priority_app_id="service")
    result = sim.run()
    return {
        "batch_time": result.execution_time("batch"),
        "batch_throughput": result.telemetry["batch"].mean_throughput_gbps,
        "service_stall": result.telemetry["service"].mean_stall_fraction,
        "nodes_used": num_batch_workers,
    }


def main() -> None:
    print("planning question: how many of machine A's 8 nodes does the")
    print("Ocean batch job need, and does BWAP change the answer?")
    print(f"(constraint: the co-located service may stall <= {STALL_BUDGET:.0%})\n")
    print(f"{'config':>22} {'batch time':>11} {'throughput':>11} "
          f"{'service stall':>14} {'ok?':>4}")

    candidates = []
    for n in (1, 2, 4):
        for use_bwap in (False, True):
            r = evaluate(n, use_bwap)
            ok = r["service_stall"] <= STALL_BUDGET
            label = f"{n} node(s), {'bwap' if use_bwap else 'first-touch'}"
            print(f"{label:>22} {r['batch_time']:>10.1f}s "
                  f"{r['batch_throughput']:>10.2f} "
                  f"{r['service_stall']:>13.4f} {'yes' if ok else 'NO':>4}")
            if ok:
                candidates.append((r["batch_time"], label, r))

    best_time, best_label, best = min(candidates)
    print(f"\nrecommendation: {best_label} — finishes in {best_time:.1f}s "
          f"using {best['nodes_used']} node(s) while keeping the service "
          f"within budget.")
    print("BWAP lets the batch job harvest the service nodes' spare bandwidth,")
    print("so fewer dedicated nodes reach the same completion time.")


if __name__ == "__main__":
    main()
