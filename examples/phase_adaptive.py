#!/usr/bin/env python
"""Phase-changing applications: BWAP's dynamic re-tuning extension (§VI).

The paper's DWP tuner assumes one stable execution phase; its conclusion
proposes extending BWAP to "dynamically adjust its weight distribution
throughout the application's execution time ... for applications whose
access patterns change over time". This example runs a two-phase
application — a latency-leaning Streamcluster stage followed by a
bandwidth-devouring Ocean stage — and compares:

* plain BWAP, which tunes once for the first phase and is then stuck
  (possibly at a placement that is terrible for the second phase), with
* AdaptiveBWAP, which detects the phase change from the stall-rate drift
  and re-runs the DWP search.

Run:  python examples/phase_adaptive.py
"""

import dataclasses

from repro import CanonicalTuner, MeasurementConfig, Simulator, machine_b
from repro.core import AdaptiveBWAP
from repro.core.dwp import DWPTuner
from repro.engine import PhasedApplication
from repro.workloads import ocean_cp, streamcluster, two_phase

#: Faster sampling than the paper's default (n=20, t=0.2s) so the first
#: search settles well before the phase boundary of this short demo run.
QUICK = MeasurementConfig(n=8, c=2, t=0.1)


def make_workload():
    sc = dataclasses.replace(streamcluster(), work_bytes=700e9)
    oc = dataclasses.replace(ocean_cp(), work_bytes=700e9)
    return two_phase("sc-then-oc", sc, oc, split=0.5)


def main() -> None:
    machine = machine_b()
    canonical = CanonicalTuner(machine)
    workers = (0,)

    # One-shot BWAP: a single DWP search at startup.
    sim = Simulator(machine)
    app = sim.add_app(
        PhasedApplication("app", make_workload(), machine, workers, policy=None)
    )
    oneshot = sim.add_tuner(
        DWPTuner(app, canonical.weights(workers), mode="kernel",
                 config=QUICK, warmup_s=0.2)
    )
    t_oneshot = sim.run().execution_time("app")

    # Adaptive BWAP: auto-trigger + phase-change re-tuning.
    sim = Simulator(machine)
    app = sim.add_app(
        PhasedApplication("app", make_workload(), machine, workers, policy=None)
    )
    adaptive = sim.add_tuner(AdaptiveBWAP(app, canonical.weights(workers),
                     measurement=QUICK, warmup_s=0.2))
    t_adaptive = sim.run().execution_time("app")

    print("two-phase application: Streamcluster (latency-leaning), then")
    print("Ocean_cp (bandwidth-hungry), one worker node on machine B\n")
    print(f"one-shot BWAP : {t_oneshot:7.1f}s   (settled at DWP "
          f"{oneshot.final_dwp:.0%} for phase 1 and never moved)")
    print(f"adaptive BWAP : {t_adaptive:7.1f}s   "
          f"({adaptive.searches_started} searches, "
          f"{adaptive.retunes} re-tune(s), final DWP {adaptive.final_dwp:.0%})")
    print(f"\nspeedup from re-tuning: {t_oneshot / t_adaptive:.2f}x")
    print("\nThe adaptive variant uses the kernel-level weighted interleave:")
    print("re-tuning needs widening migrations, which the portable user-level")
    print("mbind path cannot perform (paper Section III-B2).")


if __name__ == "__main__":
    main()
