#!/usr/bin/env python
"""Quickstart: BWAP vs the standard page-placement policies.

Deploys PARSEC Streamcluster on two worker nodes of the paper's machine A
(the 8-node AMD Opteron with the strongly asymmetric interconnect of
Fig. 1a) and compares execution time under:

* ``first-touch``      — the Linux default,
* ``uniform-workers``  — the state-of-the-art interleave (Carrefour/AsymSched),
* ``uniform-all``      — interleave across every node,
* **BWAP**             — canonical weights + on-line DWP tuning.

Run:  python examples/quickstart.py
"""

from repro import (
    Application,
    CanonicalTuner,
    FirstTouch,
    Simulator,
    UniformAll,
    UniformWorkers,
    bwap_init,
    machine_a,
    pick_worker_nodes,
    streamcluster,
)


def main() -> None:
    machine = machine_a()
    workers = pick_worker_nodes(machine, 2)  # AsymSched-style selection
    workload = streamcluster()
    print(f"machine: {machine.name} ({machine.num_nodes} nodes, "
          f"asymmetry {machine.asymmetry_amplitude():.1f}x)")
    print(f"workload: {workload.name}, workers: {workers}\n")

    results = {}
    for name, policy in [
        ("first-touch", FirstTouch()),
        ("uniform-workers", UniformWorkers()),
        ("uniform-all", UniformAll()),
    ]:
        sim = Simulator(machine)
        sim.add_app(Application("app", workload, machine, workers, policy=policy))
        results[name] = sim.run().execution_time("app")

    # BWAP: the application is built without a policy; BWAP-init takes over
    # placement (canonical weights first, then the DWP search on-line).
    canonical = CanonicalTuner(machine)
    sim = Simulator(machine)
    app = sim.add_app(Application("app", workload, machine, workers, policy=None))
    tuner = bwap_init(sim, app, canonical_tuner=canonical)
    results["bwap"] = sim.run().execution_time("app")

    base = results["uniform-workers"]
    print(f"{'policy':>16}  {'exec time':>10}  {'speedup vs uniform-workers':>28}")
    for name, t in results.items():
        print(f"{name:>16}  {t:>9.1f}s  {base / t:>27.2f}x")
    print(f"\nBWAP settled at DWP = {tuner.final_dwp:.0%} "
          f"after {tuner.iterations} iterations")
    print(f"canonical weights: {canonical.weights(workers).round(3)}")


if __name__ == "__main__":
    main()
