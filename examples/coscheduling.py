#!/usr/bin/env python
"""Workload consolidation: the paper's co-scheduled scenario (Section III-B3).

A latency-sensitive, high-priority application (Swaptions, "A") owns six of
machine A's eight nodes; a memory-hungry best-effort application (Ocean,
"B") runs in the remaining two-node partition. BWAP's co-scheduled variant
lets B borrow the spare bandwidth of A's nodes *without* degrading A: the
2-stage DWP search first raises B's data-to-worker proximity until A's
stall rate stabilises, then continues guided by B's own stall rate.

Run:  python examples/coscheduling.py
"""

from repro import (
    Application,
    CanonicalTuner,
    FirstTouch,
    Simulator,
    UniformWorkers,
    bwap_init,
    machine_a,
    ocean_cp,
    pick_worker_nodes,
    swaptions,
)


def run(policy_label: str) -> dict:
    machine = machine_a()
    workers_b = pick_worker_nodes(machine, 2)
    workers_a = tuple(n for n in machine.node_ids if n not in workers_b)

    sim = Simulator(machine)
    # A runs continuously (looping) with its pages placed locally.
    sim.add_app(
        Application("A", swaptions(), machine, workers_a,
                    policy=FirstTouch(), looping=True)
    )
    if policy_label == "bwap":
        app_b = sim.add_app(
            Application("B", ocean_cp(), machine, workers_b, policy=None)
        )
        tuner = bwap_init(
            sim, app_b,
            canonical_tuner=CanonicalTuner(machine),
            high_priority_app_id="A",   # <- the co-scheduled 2-stage variant
        )
    else:
        app_b = sim.add_app(
            Application("B", ocean_cp(), machine, workers_b, policy=UniformWorkers())
        )
        tuner = None

    result = sim.run()
    return {
        "exec_time": result.execution_time("B"),
        "a_stall": result.telemetry["A"].mean_stall_fraction,
        "b_throughput": result.telemetry["B"].mean_throughput_gbps,
        "dwp": None if tuner is None else tuner.final_dwp,
        "stage": None if tuner is None else tuner.stage,
    }


def main() -> None:
    baseline = run("uniform-workers")
    bwap = run("bwap")

    print("co-scheduled partition: B = Ocean_cp on 2 nodes, "
          "A = Swaptions on the other 6\n")
    print(f"{'':>24} {'uniform-workers':>16} {'bwap':>10}")
    print(f"{'B execution time':>24} {baseline['exec_time']:>15.1f}s "
          f"{bwap['exec_time']:>9.1f}s")
    print(f"{'B throughput (GB/s)':>24} {baseline['b_throughput']:>16.2f} "
          f"{bwap['b_throughput']:>10.2f}")
    print(f"{'A mean stall fraction':>24} {baseline['a_stall']:>16.4f} "
          f"{bwap['a_stall']:>10.4f}")
    print(f"\nB speedup with BWAP: "
          f"{baseline['exec_time'] / bwap['exec_time']:.2f}x")
    print(f"BWAP settled at DWP = {bwap['dwp']:.0%} (reached stage {bwap['stage']})")
    print("\nNote: A stays essentially unstalled (well under 1% of cycles) —")
    print("B harvested A's spare bandwidth without meaningfully degrading the")
    print("high-priority workload.")


if __name__ == "__main__":
    main()
