#!/usr/bin/env python
"""Bring your own machine: model a custom NUMA topology and tune it.

BWAP is machine-agnostic: point the canonical tuner at any topology and it
profiles the effective bandwidths and derives the weights. This example
builds three machines — a profiled-matrix import (the way you would model
*your* server from `mbw`/STREAM measurements), a generic dual-socket box,
and a 4-node ring with explicitly shared links — and shows how the
canonical weights adapt to each.

Run:  python examples/custom_topology.py
"""

import numpy as np

from repro import (
    Application,
    CanonicalTuner,
    Simulator,
    UniformAll,
    bwap_init,
    canonical_stream,
    dual_socket,
    from_bandwidth_matrix,
    ring,
)


def show_machine(machine, workers) -> None:
    tuner = CanonicalTuner(machine)
    weights = tuner.weights(workers)
    print(f"--- {machine.name}: {machine.num_nodes} nodes, "
          f"asymmetry {machine.asymmetry_amplitude():.1f}x, workers {workers}")
    print(f"    canonical weights: {np.round(weights, 3)}")
    print(f"    worker mass at DWP=0: {weights[list(workers)].sum():.2f}")

    # Run the canonical benchmark under uniform-all vs BWAP.
    wl = canonical_stream()
    sim = Simulator(machine)
    sim.add_app(Application("app", wl, machine, workers, policy=UniformAll()))
    t_uniform = sim.run().execution_time("app")

    sim = Simulator(machine)
    app = sim.add_app(Application("app", wl, machine, workers, policy=None))
    bwap_init(sim, app, canonical_tuner=tuner)
    t_bwap = sim.run().execution_time("app")
    print(f"    canonical benchmark: uniform-all {t_uniform:.1f}s, "
          f"bwap {t_bwap:.1f}s ({t_uniform / t_bwap:.2f}x)\n")


def main() -> None:
    # 1. A machine imported from measured pairwise bandwidths (GB/s):
    #    rows = memory (source) node, columns = consuming node.
    measured = np.array(
        [
            [30.0, 14.0, 9.0, 6.0],
            [14.0, 30.0, 6.0, 9.0],
            [9.0, 6.0, 30.0, 14.0],
            [6.0, 9.0, 14.0, 30.0],
        ]
    )
    custom = from_bandwidth_matrix(
        measured, cores_per_node=12, name="my-measured-server"
    )
    show_machine(custom, workers=(0,))

    # 2. A generic dual-socket machine built from three bandwidth figures.
    box = dual_socket(
        nodes_per_socket=2, cores_per_node=10,
        local_bw=28.0, intra_socket_bw=18.0, inter_socket_bw=9.0,
    )
    show_machine(box, workers=(0, 1))

    # 3. A 4-node ring: multi-hop routes share physical links, so the
    #    contention solver exhibits genuine interconnect congestion.
    loop = ring(4, local_bw=22.0, link_bw=9.0)
    show_machine(loop, workers=(0, 1))


if __name__ == "__main__":
    main()
