#!/usr/bin/env python
"""BWAP on a hybrid DRAM + NVM machine (paper Section VI).

The paper's final future-work item: "extend BWAP to support NUMA systems
whose nodes have hybrid memory subsystems (e.g. DRAM and NVRAM)". Because
BWAP only consumes the machine through its profiled bandwidth matrix, the
extension needs no new mechanism — the canonical tuner simply profiles the
NVM nodes' inferior bandwidth and weights them down, recovering the
tiered-memory placement principle of BATMAN/Yu et al. that inspired BWAP.

This example builds a 2-DRAM + 2-NVM machine, shows the canonical weights,
and compares uniform interleaving (which over-commits the slow NVM) with
BWAP.

Run:  python examples/hybrid_memory.py
"""

import numpy as np

from repro import (
    Application,
    CanonicalTuner,
    Simulator,
    UniformAll,
    UniformWorkers,
    bwap_init,
    canonical_stream,
    pick_worker_nodes,
)
from repro.topology import hybrid_dram_nvm


def main() -> None:
    machine = hybrid_dram_nvm(
        dram_nodes=2, nvm_nodes=2,
        dram_bw=25.0, nvm_bw=8.0,
        nvm_latency_ns=320.0,
    )
    workers = pick_worker_nodes(machine, 2)  # the DRAM (compute) nodes
    canonical = CanonicalTuner(machine)
    weights = canonical.weights(workers)

    print(f"machine: {machine.name} — nodes 0-1 DRAM (25 GB/s, with cores),")
    print(f"         nodes 2-3 NVM (8 GB/s, memory-only)\n")
    print(f"nominal bandwidth matrix (GB/s):")
    print(np.round(machine.nominal_bandwidth_matrix(), 1))
    print(f"\ncanonical weights for workers {workers}: {np.round(weights, 3)}")
    print("-> NVM nodes receive proportionally fewer pages, but are not idle:")
    print("   their spare bandwidth is still harvested.\n")

    workload = canonical_stream()
    results = {}
    for name, policy in [
        ("uniform-workers (DRAM only)", UniformWorkers()),
        ("uniform-all (overcommits NVM)", UniformAll()),
    ]:
        sim = Simulator(machine)
        sim.add_app(Application("app", workload, machine, workers, policy=policy))
        results[name] = sim.run().execution_time("app")

    sim = Simulator(machine)
    app = sim.add_app(Application("app", workload, machine, workers, policy=None))
    tuner = bwap_init(sim, app, canonical_tuner=canonical)
    results["bwap (bandwidth-proportional)"] = sim.run().execution_time("app")

    base = results["uniform-workers (DRAM only)"]
    print(f"{'placement':>32}  {'exec time':>10}  {'speedup':>8}")
    for name, t in results.items():
        print(f"{name:>32}  {t:>9.1f}s  {base / t:>7.2f}x")
    print(f"\nBWAP settled at DWP = {tuner.final_dwp:.0%}")


if __name__ == "__main__":
    main()
