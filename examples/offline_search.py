#!/usr/bin/env python
"""The oracle vs BWAP: how close does the 2-stage approximation get?

Runs the paper's offline N-dimensional hill-climbing search (15+ hours on
real hardware, seconds here) for each benchmark, then BWAP's canonical +
DWP pipeline, and reports the gap. This is the paper's core engineering
claim: collapsing the N-dimensional problem to one DWP dimension loses
little while being usable on-line.

Run:  python examples/offline_search.py
"""

import numpy as np

from repro import (
    Application,
    CanonicalTuner,
    Simulator,
    bwap_init,
    machine_a,
    paper_benchmarks,
    pick_worker_nodes,
    search_optimal_placement,
)
from repro.memsim import WeightedInterleave


def main() -> None:
    machine = machine_a()
    workers = pick_worker_nodes(machine, 2)
    canonical = CanonicalTuner(machine)

    print(f"machine A, workers {workers}\n")
    print(f"{'bench':>6}  {'oracle':>8}  {'bwap':>8}  {'gap':>6}  oracle weights")
    for wl in paper_benchmarks():
        search = search_optimal_placement(machine, wl, workers, max_iterations=60)

        # Validate the oracle's weights with a full simulated run.
        sim = Simulator(machine)
        sim.add_app(
            Application("app", wl, machine, workers,
                        policy=WeightedInterleave(search.weights))
        )
        t_oracle = sim.run().execution_time("app")

        sim = Simulator(machine)
        app = sim.add_app(Application("app", wl, machine, workers, policy=None))
        bwap_init(sim, app, canonical_tuner=canonical)
        t_bwap = sim.run().execution_time("app")

        gap = (t_bwap / t_oracle - 1.0) * 100
        print(f"{wl.name:>6}  {t_oracle:>7.1f}s  {t_bwap:>7.1f}s  {gap:>5.1f}%  "
              f"{np.round(search.weights, 2)}")
    print("\n(gap = BWAP's execution time over the oracle's; the oracle needs")
    print(" hundreds of offline runs per application, BWAP needs none)")


if __name__ == "__main__":
    main()
