#!/usr/bin/env python
"""Visualise the DWP landscape and the tuner's path through it (Fig. 4).

Sweeps static DWP values for Streamcluster on machine A, printing the
normalised stall rate and execution time at each point (the paper's Fig. 4
curves, as ASCII), then runs BWAP's on-line search and overlays its
trajectory — demonstrating the two properties the search relies on: the
stall curve is convex and tracks execution time, and the climb lands within
one step of the static optimum.

Run:  python examples/dwp_tuning_curve.py
"""

from repro.experiments.fig4 import run_fig4


def bar(value: float, width: int = 40) -> str:
    return "#" * max(1, round(value * width))


def main() -> None:
    result = run_fig4(worker_counts=(1, 2))
    for n, panel in sorted(result.panels.items()):
        print(f"=== Streamcluster, machine A, {n} worker node(s), co-scheduled ===")
        print(f"{'DWP':>5}  {'exec time':>9}  curve")
        max_t = max(p.exec_time_s for p in panel.sweep)
        for p in panel.sweep:
            marker = ""
            if abs(p.dwp - panel.static_optimal_dwp) < 1e-9:
                marker += "  <- static optimum"
            if abs(p.dwp - panel.bwap_final_dwp) < 1e-9:
                marker += "  <- BWAP landed here"
            print(f"{p.dwp:>5.0%}  {p.exec_time_s:>8.1f}s  "
                  f"{bar(p.exec_time_s / max_t)}{marker}")
        print(f"\nBWAP trajectory (time, DWP, measured stall rate):")
        for t, dwp, stall in panel.bwap_trajectory:
            print(f"  t={t:6.1f}s  DWP={dwp:>4.0%}  stall={stall:.3e}")
        print(f"tuner error: {panel.tuner_error_steps:.0f} step(s) "
              f"from the static optimum (paper reports at most 1)\n")


if __name__ == "__main__":
    main()
